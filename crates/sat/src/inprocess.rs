//! SatELite-style inprocessing: backward subsumption, self-subsuming
//! resolution, and bounded variable elimination, run at level-0
//! boundaries of the search (`Solver::maybe_inprocess`).
//!
//! The round works directly on the parent module's flat clause arena in
//! four phases:
//!
//! 1. **Scan** — delete level-0-satisfied clauses, strip level-0-false
//!    literals, sort every live clause's literals in place, and build
//!    literal-indexed occurrence lists plus 64-bit variable signatures.
//! 2. **Subsumption sweep** — for each clause, check the occurrence
//!    lists of its rarest variable for clauses it subsumes (deleted) or
//!    strengthens by self-subsuming resolution (one literal removed).
//! 3. **Bounded variable elimination** — resolve the positive against
//!    the negative occurrences of cheap unfrozen variables; when the
//!    non-tautological resolvents do not outnumber the clauses they
//!    replace, add the resolvents, delete the originals, and push the
//!    originals onto the model-reconstruction stack.
//! 4. **Rebuild** — phases 1–3 reorder literals inside the arena, so
//!    the two-watched-literal invariant is void; rebuild every watch
//!    list wholesale, compact deleted clauses, and re-propagate the
//!    trail from scratch. This phase always runs (even when an earlier
//!    phase was interrupted): the solver must never leave inprocessing
//!    with stale watches.
//!
//! Certified mode accepts inprocessed refutations unchanged, but most
//! elimination traffic never reaches the proof. Subsumption deletions
//! and strengthenings are logged while their premises are live, as
//! usual. Variable elimination instead *elides* its parent deletions —
//! the parents stay in the checker's database — and then a live parent
//! pair simulates its resolvent under unit propagation: whenever the
//! resolvent would propagate `l`, one parent becomes unit on the pivot
//! and the other then unit on `l`. The simulation fails only when the
//! parents share a non-pivot literal (both keep two free literals), so
//! exactly those resolvents, plus unit resolvents (which must
//! propagate persistently), are logged as RUP `Derived` steps; the
//! rest are elided, keeping the certificate linear in the *search*
//! effort instead of the elimination effort. Extra live clauses in the
//! checker are always sound (they are entailed consequences), and the
//! simulation argument makes the logged refutation check through
//! without the elided clauses, recursively through elimination
//! cascades.

use super::*;

/// Per-side occurrence cap for variable elimination: variables with
/// more occurrences than this are skipped (SatELite's cheap-var rule).
const BVE_OCC_CAP: usize = 10;
/// Skip elimination when any resolvent would exceed this many literals.
const BVE_RESOLVENT_LEN_CAP: usize = 32;
/// Skip the subsumption attempt for a clause whose best candidate list
/// is longer than this.
const SUBSUME_CAND_CAP: usize = 600;
/// Clauses between interrupt polls in the subsumption sweep (heavier
/// per-clause work than the plain database sweeps).
const SUBSUME_POLL: usize = 256;
/// Longest stored hint expansion for an elided resolvent (see
/// `Solver::elided_expansion`); deeper elimination cascades go
/// unexpanded and conflicts touching them fall back to unhinted steps.
const ELIDED_HINT_MAX: usize = 128;

/// Occurrence lists (indexed by `Lit::index`) and per-clause variable
/// signatures built by the scan phase. Only *original* (non-learnt)
/// clauses are indexed: they are the subsumption and elimination
/// substrate, and leaving the (much larger) learnt database out keeps
/// every candidate list short. Lists go stale as clauses are deleted or
/// strengthened; consumers re-verify membership on use.
struct OccState {
    occ: Vec<Vec<CRef>>,
    sig: Vec<u64>,
}

#[inline]
fn sig_bit(l: Lit) -> u64 {
    1u64 << (l.var().index() & 63)
}

/// Does `a` subsume `b` (every literal of `a` appears in `b`), allowing
/// at most one literal of `a` to appear *negated* in `b`?
/// `Some(None)`: plain subsumption. `Some(Some(l))`: all of `a` matches
/// except `l`, whose negation is in `b` — the self-subsuming-resolution
/// case (remove `!l` from `b`). Both slices must be sorted and
/// tautology-free.
fn subsume_check(a: &[Lit], b: &[Lit]) -> Option<Option<Lit>> {
    let mut flip: Option<Lit> = None;
    let mut j = 0;
    for &la in a {
        let lo = if la < !la { la } else { !la };
        while j < b.len() && b[j] < lo {
            j += 1;
        }
        if j == b.len() {
            return None;
        }
        if b[j] == la {
            j += 1;
        } else if b[j] == !la {
            if flip.is_some() {
                return None;
            }
            flip = Some(la);
            j += 1;
        } else {
            return None;
        }
    }
    Some(flip)
}

impl Solver {
    /// Runs one inprocessing round. Must be called at decision level 0;
    /// on unsatisfiability (`ok` drops) the concluding empty clause has
    /// been logged.
    pub(super) fn inprocess(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        if self.propagate().is_some() {
            self.ok = false;
            self.log(ProofStep::Derived(Vec::new()));
            return;
        }
        // Level-0 reasons are never consulted again (conflict analysis
        // skips level 0); clear them so the clauses they point into can
        // be deleted and compacted.
        for i in 0..self.trail.len() {
            self.reason[self.trail[i].var().index()] = None;
        }
        let mut st = OccState {
            occ: vec![Vec::new(); 2 * self.assign.len()],
            sig: vec![0; self.clauses.len()],
        };
        let complete = self.inprocess_scan(&mut st);
        if self.ok && complete {
            self.subsume_sweep(&mut st);
        }
        if self.ok
            && complete
            && self.inprocess_bve
            && !self.bve_saturated
            && !self.interrupted()
        {
            let finished = self.eliminate_vars(&mut st);
            self.bve_saturated = finished && self.ok;
        }
        if self.ok {
            self.rebuild_after_inprocess();
        }
    }

    fn mark_deleted(&mut self, ci: usize) {
        let c = &mut self.clauses[ci];
        c.deleted = true;
        if c.learnt {
            self.num_learnts -= 1;
        }
    }

    fn delete_clause(&mut self, ci: usize) {
        self.log_delete(ci);
        self.mark_deleted(ci);
    }

    /// Replaces clause `ci`'s literals with `new` (a strict subset of
    /// the current ones), logging the derivation before the deletion so
    /// the new clause is RUP while the old one is live. A one-literal
    /// result enqueues the unit and deletes the clause; an empty result
    /// concludes the proof. Returns `false` when `ok` dropped.
    ///
    /// `antecedents` names the clauses whose unit propagations justify
    /// `new` (ordered: the falsified clause last), used as the LRAT
    /// hint when every antecedent is in the proof.
    fn rewrite_clause(&mut self, ci: usize, mut new: Vec<Lit>, antecedents: &[CRef]) -> bool {
        new.sort_unstable();
        match self.antecedent_hints(antecedents) {
            Some(hints) => self.log(ProofStep::DerivedHinted(new.clone(), hints)),
            None => self.log(ProofStep::Derived(new.clone())),
        }
        if new.is_empty() {
            self.ok = false;
            return false;
        }
        self.log_delete(ci);
        match new.len() {
            1 => {
                self.mark_deleted(ci);
                match value_of(&self.assign, new[0]) {
                    LBool::True => true,
                    LBool::False => {
                        self.ok = false;
                        self.log(ProofStep::Derived(Vec::new()));
                        false
                    }
                    LBool::Undef => {
                        self.unchecked_enqueue(new[0], None);
                        true
                    }
                }
            }
            _ => {
                let start = self.clauses[ci].start as usize;
                self.lit_arena[start..start + new.len()].copy_from_slice(&new);
                self.clauses[ci].len = new.len() as u32;
                // The derivation above put the new literal set in the
                // proof, even if the old clause was an unlogged
                // resolvent — its future deletion must be logged.
                self.clauses[ci].proof_id = self.last_proof_id();
                true
            }
        }
    }

    /// Maps antecedent clause refs to their proof-log ids for an LRAT
    /// hint; an antecedent that was never logged (an elided elimination
    /// resolvent) is spliced into its stored parent expansion. `None`
    /// when hints are off or an elided antecedent has no expansion
    /// either — the step still RUP-checks from that resolvent's live
    /// parents, just not by the direct walk.
    fn antecedent_hints(&self, antecedents: &[CRef]) -> Option<Vec<u32>> {
        if !self.lrat || self.proof.is_none() || antecedents.is_empty() {
            return None;
        }
        let mut ids = Vec::with_capacity(antecedents.len());
        for &c in antecedents {
            match self.clauses[c as usize].proof_id {
                NO_PROOF_ID => ids.extend_from_slice(self.elided_hints.get(&c)?),
                pid => ids.push(pid),
            }
        }
        Some(ids)
    }

    /// Hint expansion for an elided resolvent of `parents = [P, N]` on
    /// some pivot `v` (`v ∈ P`, `!v ∈ N`): checker clause ids whose
    /// in-order walk simulates the resolvent's unit propagation from
    /// its live parents. The resolvent `A ∪ B` (with `P = {v} ∪ A`,
    /// `N = {!v} ∪ B`) is unit on `l` exactly when all its other
    /// literals are false; then the parent *not* containing `l` is unit
    /// on the pivot, and the other parent — once the pivot resolves —
    /// unit on `l`. Emitting `[P, N, P]` covers both cases because the
    /// checker's hinted walk skips hints that are satisfied or leave
    /// two literals free (`Checker::hinted_rup`). Elided parents
    /// recurse into their own stored expansions; `None` when a parent
    /// chain is unexpandable or the splice would exceed
    /// [`ELIDED_HINT_MAX`] (conflicts consulting the resolvent then log
    /// an unhinted `Derived` instead).
    fn elided_expansion(&self, parents: &[CRef; 2]) -> Option<Vec<u32>> {
        let one;
        let p: &[u32] = match self.clauses[parents[0] as usize].proof_id {
            NO_PROOF_ID => self.elided_hints.get(&parents[0])?,
            pid => {
                one = [pid];
                &one
            }
        };
        let two;
        let n: &[u32] = match self.clauses[parents[1] as usize].proof_id {
            NO_PROOF_ID => self.elided_hints.get(&parents[1])?,
            pid => {
                two = [pid];
                &two
            }
        };
        if p.len() * 2 + n.len() > ELIDED_HINT_MAX {
            return None;
        }
        let mut out = Vec::with_capacity(p.len() * 2 + n.len());
        out.extend_from_slice(p);
        out.extend_from_slice(n);
        out.extend_from_slice(p);
        Some(out)
    }

    /// Phase 1: level-0 cleanup plus occurrence/signature construction.
    /// Returns `false` when interrupted (or `ok` dropped) mid-scan.
    fn inprocess_scan(&mut self, st: &mut OccState) -> bool {
        for ci in 0..self.clauses.len() {
            if ci % SWEEP_GRANULARITY == 0 && self.interrupted() {
                return false;
            }
            if self.clauses[ci].deleted {
                continue;
            }
            let range = self.clauses[ci].range();
            let mut satisfied = false;
            let mut false_lits = 0usize;
            for k in range.clone() {
                match value_of(&self.assign, self.lit_arena[k]) {
                    LBool::True => {
                        satisfied = true;
                        break;
                    }
                    LBool::False => false_lits += 1,
                    LBool::Undef => {}
                }
            }
            if satisfied {
                self.delete_clause(ci);
                continue;
            }
            if false_lits > 0 {
                let live: Vec<Lit> = self.lit_arena[range]
                    .iter()
                    .copied()
                    .filter(|&l| value_of(&self.assign, l) == LBool::Undef)
                    .collect();
                // Hint: the old clause itself — its stripped literals
                // are false by the checker's persistent level-0 facts,
                // so asserting the new clause's negation falsifies it.
                if !self.rewrite_clause(ci, live, &[ci as CRef]) {
                    return false;
                }
                if self.clauses[ci].deleted {
                    continue; // shrank to a unit
                }
            } else {
                let r = self.clauses[ci].range();
                self.lit_arena[r].sort_unstable();
            }
            if self.clauses[ci].learnt {
                continue; // cleaned, but not indexed (see [`OccState`])
            }
            let r = self.clauses[ci].range();
            let mut s = 0u64;
            for k in r {
                let l = self.lit_arena[k];
                s |= sig_bit(l);
                st.occ[l.index()].push(ci as CRef);
            }
            st.sig[ci] = s;
        }
        true
    }

    /// Phase 2: backward subsumption + self-subsuming resolution, over
    /// the original clauses (learnts are consequences the `reduce_db`
    /// policy already trims; sweeping them too made candidate lists an
    /// order of magnitude longer for marginal deletions).
    fn subsume_sweep(&mut self, st: &mut OccState) {
        for ci in 0..self.clauses.len() {
            if ci % SUBSUME_POLL == 0 && self.interrupted() {
                return;
            }
            if self.clauses[ci].deleted || self.clauses[ci].learnt {
                continue;
            }
            // Pick the literal of `ci` with the fewest occurrences of
            // its variable: every clause `ci` subsumes (or strengthens)
            // contains that variable in one polarity or the other.
            let range = self.clauses[ci].range();
            let mut best: Option<(usize, Lit)> = None;
            for k in range {
                let l = self.lit_arena[k];
                let cost = st.occ[l.index()].len() + st.occ[(!l).index()].len();
                if best.map_or(true, |(c, _)| cost < c) {
                    best = Some((cost, l));
                }
            }
            let Some((cost, bl)) = best else { continue };
            if cost > SUBSUME_CAND_CAP {
                continue;
            }
            let ci_lits = self.lit_arena[self.clauses[ci].range()].to_vec();
            let ci_sig = st.sig[ci];
            for cand_lit in [bl, !bl] {
                // Index loop: the occurrence list is only appended to
                // (by elimination, a later phase), so positional
                // iteration is stable and avoids cloning the list.
                for idx in 0..st.occ[cand_lit.index()].len() {
                    let cj = st.occ[cand_lit.index()][idx] as usize;
                    if cj == ci || self.clauses[cj].deleted {
                        continue;
                    }
                    let cj_range = self.clauses[cj].range();
                    if cj_range.len() < ci_lits.len() || ci_sig & !st.sig[cj] != 0 {
                        continue;
                    }
                    match subsume_check(&ci_lits, &self.lit_arena[cj_range]) {
                        None => {}
                        Some(None) => {
                            self.delete_clause(cj);
                            self.stats.subsumed += 1;
                        }
                        Some(Some(la)) => {
                            // Resolving ci and cj on `la` yields
                            // cj \ {!la}: strengthen cj in place.
                            let new: Vec<Lit> = self.lit_arena
                                [self.clauses[cj].range()]
                            .iter()
                            .copied()
                            .filter(|&l| l != !la)
                            .collect();
                            // Hint: under the strengthened clause's
                            // negation, `ci` is unit on `la` and `cj`
                            // is then falsified.
                            if !self.rewrite_clause(cj, new, &[ci as CRef, cj as CRef]) {
                                return;
                            }
                            self.stats.strengthened += 1;
                            if !self.clauses[cj].deleted {
                                let mut s = 0u64;
                                for k in self.clauses[cj].range() {
                                    s |= sig_bit(self.lit_arena[k]);
                                }
                                st.sig[cj] = s;
                            }
                        }
                    }
                }
            }
        }
    }

    /// The live, original (non-learnt) clauses currently containing `l`
    /// — occurrence lists go stale, so membership is re-verified.
    /// Collects the live original clauses containing `l` into `out`,
    /// pruning stale occurrence entries in passing (a clause deleted or
    /// strengthened away from `l` never comes back within a round).
    fn live_original_occs_into(&self, st: &mut OccState, l: Lit, out: &mut Vec<CRef>) {
        out.clear();
        let list = &mut st.occ[l.index()];
        let mut i = 0;
        while i < list.len() {
            let c = &self.clauses[list[i] as usize];
            if !c.deleted && !c.learnt && self.lit_arena[c.range()].contains(&l) {
                out.push(list[i]);
                i += 1;
            } else {
                list.swap_remove(i);
            }
        }
    }

    /// Counts live occurrences of `l`, stopping at `cap + 1` — the
    /// common case (a variable far too busy to eliminate) is answered
    /// without allocating its occurrence vector. Stale entries
    /// encountered on the way are pruned, so an elimination-heavy pass
    /// does not rescan its own dead parents for every later variable.
    fn count_live_occs(&self, st: &mut OccState, l: Lit, cap: usize) -> usize {
        let list = &mut st.occ[l.index()];
        let mut n = 0;
        let mut i = 0;
        while i < list.len() {
            let c = &self.clauses[list[i] as usize];
            if !c.deleted && !c.learnt && self.lit_arena[c.range()].contains(&l) {
                n += 1;
                if n > cap {
                    break;
                }
                i += 1;
            } else {
                list.swap_remove(i);
            }
        }
        n
    }

    /// Appends the resolvent of clauses `p` and `n` on variable `v`
    /// (`v` in `p` positively, in `n` negatively) to `out`; `None` for
    /// tautologies (leaving `out` untouched). The returned flag is
    /// `true` when the parents share a non-pivot literal — the one
    /// case where the parents do *not* simulate the resolvent under
    /// unit propagation (see `eliminate_vars_inner`), so the resolvent
    /// must be logged to the proof.
    ///
    /// Both parents are sorted and duplicate-free (the scan phase sorts
    /// every live clause, and every clause BVE adds or strengthens
    /// stays sorted), so the resolvent is a two-pointer merge — no sort
    /// and, with the caller-owned buffer, no allocation in the
    /// million-resolvent elimination cascade. A cross-parent
    /// complementary pair (tautology) is adjacent in merge order, since
    /// the two polarities of one variable sort next to each other.
    fn resolve_on_into(
        &self,
        p: usize,
        n: usize,
        v: Var,
        out: &mut Vec<Lit>,
    ) -> Option<bool> {
        let a = &self.lit_arena[self.clauses[p].range()];
        let b = &self.lit_arena[self.clauses[n].range()];
        debug_assert!(a.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(b.windows(2).all(|w| w[0] < w[1]));
        let start = out.len();
        let mut shared = false;
        let mut i = 0;
        let mut j = 0;
        loop {
            let next = match (a.get(i), b.get(j)) {
                (Some(&la), Some(&lb)) => {
                    if la == lb {
                        // The pivot appears with opposite polarities,
                        // so an equal pair is a shared non-pivot lit.
                        i += 1;
                        j += 1;
                        shared = true;
                        la
                    } else if la < lb {
                        i += 1;
                        la
                    } else {
                        j += 1;
                        lb
                    }
                }
                (Some(&la), None) => {
                    i += 1;
                    la
                }
                (None, Some(&lb)) => {
                    j += 1;
                    lb
                }
                (None, None) => break,
            };
            if next.var() == v {
                continue;
            }
            if out.len() > start && out[out.len() - 1] == !next {
                out.truncate(start);
                return None;
            }
            out.push(next);
        }
        Some(shared)
    }

    /// Phase 3: bounded variable elimination. The learnt database is
    /// swept once at the end (learnt clauses mentioning an eliminated
    /// variable are consequences of the *old* database; dropping
    /// learnts is always sound) — on every exit path, because phase 4
    /// re-watches whatever is left and an eliminated variable must not
    /// come back to life through a learnt unit. Returns whether the
    /// pass covered every variable (i.e. was not interrupted).
    fn eliminate_vars(&mut self, st: &mut OccState) -> bool {
        let killed_from = self.elim_stack.len();
        let finished = self.eliminate_vars_inner(st);
        if self.elim_stack.len() == killed_from {
            return finished;
        }
        let mut killed = vec![false; self.assign.len()];
        for (v, _) in &self.elim_stack[killed_from..] {
            killed[v.index()] = true;
        }
        for ci in 0..self.clauses.len() {
            let c = &self.clauses[ci];
            if c.deleted || !c.learnt {
                continue;
            }
            if self.lit_arena[c.range()].iter().any(|l| killed[l.var().index()]) {
                self.delete_clause(ci);
            }
        }
        finished
    }

    /// Returns `false` when interrupted or when `ok` dropped mid-pass.
    fn eliminate_vars_inner(&mut self, st: &mut OccState) -> bool {
        let mut frozen_now = self.frozen.clone();
        for &a in &self.assumptions {
            frozen_now[a.var().index()] = true;
        }
        if let Some(elig) = &self.eliminable {
            // An explicit eliminability mask replaces the decision-scope
            // auto-freeze: the embedder has pre-computed exactly which
            // variables no future clause can mention (sessions derive
            // this from their retirement plan), so even in-scope
            // variables may be eliminated. Soundness is unchanged —
            // `pick_branch` skips eliminated variables, `Sat` models
            // extend via `reconstruct_model`, and a mask mistake only
            // costs a reintroduction round trip.
            for (i, f) in frozen_now.iter_mut().enumerate() {
                if !elig.get(i).copied().unwrap_or(false) {
                    *f = true;
                }
            }
        } else if let Some(scope) = &self.decision_scope {
            // In-scope variables carry the goal's meaning; out-of-scope
            // clauses must stay extendable, which elimination could
            // break — without an eliminability mask, scope is frozen
            // wholesale.
            for (i, &in_scope) in scope.iter().enumerate() {
                if in_scope {
                    frozen_now[i] = true;
                }
            }
        }
        let mut pos_refs: Vec<CRef> = Vec::new();
        let mut neg_refs: Vec<CRef> = Vec::new();
        // Flat staging for one variable's resolvents: a literal pool
        // with clause-end offsets, reused across variables.
        let mut res_lits: Vec<Lit> = Vec::new();
        let mut res_ends: Vec<u32> = Vec::new();
        let mut res_shared: Vec<bool> = Vec::new();
        let mut res_parents: Vec<(CRef, CRef)> = Vec::new();
        for vi in 0..self.assign.len() {
            if vi % 64 == 0 && self.interrupted() {
                return false;
            }
            if frozen_now[vi] || self.elim[vi] || self.assign[vi] != LBool::Undef {
                continue;
            }
            let v = Var(vi as u32);
            if self.count_live_occs(st, Lit::pos(v), BVE_OCC_CAP) > BVE_OCC_CAP
                || self.count_live_occs(st, Lit::neg(v), BVE_OCC_CAP) > BVE_OCC_CAP
            {
                continue;
            }
            self.live_original_occs_into(st, Lit::pos(v), &mut pos_refs);
            self.live_original_occs_into(st, Lit::neg(v), &mut neg_refs);
            if pos_refs.is_empty() && neg_refs.is_empty() {
                continue;
            }
            let limit = pos_refs.len() + neg_refs.len();
            res_lits.clear();
            res_ends.clear();
            res_shared.clear();
            res_parents.clear();
            let mut blown = false;
            'pairs: for &p in &pos_refs {
                for &n in &neg_refs {
                    let start = res_lits.len();
                    if let Some(shared) =
                        self.resolve_on_into(p as usize, n as usize, v, &mut res_lits)
                    {
                        if res_lits.len() - start > BVE_RESOLVENT_LEN_CAP {
                            blown = true;
                            break 'pairs;
                        }
                        res_ends.push(res_lits.len() as u32);
                        res_shared.push(shared);
                        res_parents.push((p, n));
                        if res_ends.len() > limit {
                            blown = true;
                            break 'pairs;
                        }
                    }
                }
            }
            if blown {
                continue;
            }
            // Commit. Stored clauses are snapshotted (for reconstruction
            // and reintroduction). The parents' deletions are *not*
            // logged, so they stay live in the checker's database — and
            // a live parent pair simulates its resolvent under unit
            // propagation: when the resolvent would propagate `l`, one
            // parent is unit on the pivot and the other then unit on
            // `l`. That simulation only fails when the parents share a
            // non-pivot literal `l` (both parents keep two free
            // literals), so exactly those resolvents — plus units,
            // which must propagate *persistently* in the checker — are
            // logged as `Derived` (RUP from the live parents); the
            // rest are elided, which keeps the certificate linear in
            // the *search* effort instead of the elimination effort.
            let mut stored = StoredClauses::new();
            for &c in pos_refs.iter().chain(&neg_refs) {
                stored.push(&self.lit_arena[self.clauses[c as usize].range()]);
            }
            let mut rs = 0usize;
            for i in 0..res_ends.len() {
                let re = res_ends[i] as usize;
                let r = &res_lits[rs..re];
                let shared = res_shared[i];
                // Hint for a logged resolvent: under its negation the
                // positive parent is unit on the pivot, the negative
                // parent then falsified.
                let parents = [res_parents[i].0, res_parents[i].1];
                rs = re;
                self.stats.resolvents += 1;
                match r.len() {
                    0 => {
                        // Both parents were units — cannot happen with a
                        // unit-free database, but conclude soundly.
                        self.log(ProofStep::Derived(Vec::new()));
                        self.ok = false;
                        return false;
                    }
                    1 => {
                        match self.antecedent_hints(&parents) {
                            Some(h) => self.log(ProofStep::DerivedHinted(r.to_vec(), h)),
                            None => self.log(ProofStep::Derived(r.to_vec())),
                        }
                        match value_of(&self.assign, r[0]) {
                            LBool::True => {}
                            LBool::False => {
                                self.ok = false;
                                self.log(ProofStep::Derived(Vec::new()));
                                return false;
                            }
                            LBool::Undef => self.unchecked_enqueue(r[0], None),
                        }
                    }
                    _ => {
                        let pid = if shared {
                            match self.antecedent_hints(&parents) {
                                Some(h) => self.log(ProofStep::DerivedHinted(r.to_vec(), h)),
                                None => self.log(ProofStep::Derived(r.to_vec())),
                            }
                            self.last_proof_id()
                        } else {
                            NO_PROOF_ID
                        };
                        let cref = self.clauses.len() as CRef;
                        let mut s = 0u64;
                        for &l in r {
                            s |= sig_bit(l);
                            st.occ[l.index()].push(cref);
                        }
                        let attached = self.attach_new_clause(r, false);
                        debug_assert_eq!(attached, cref);
                        self.clauses[cref as usize].proof_id = pid;
                        // An elided resolvent is invisible to the
                        // checker; store the parent expansion that lets
                        // hinted walks see through it.
                        if pid == NO_PROOF_ID && self.lrat && self.proof.is_some() {
                            if let Some(exp) = self.elided_expansion(&parents) {
                                self.elided_hints.insert(cref, exp);
                            }
                        }
                        debug_assert_eq!(cref as usize, st.sig.len());
                        st.sig.push(s);
                    }
                }
            }
            for &c in pos_refs.iter().chain(&neg_refs) {
                self.mark_deleted(c as usize);
            }
            self.elim[vi] = true;
            self.stats.eliminated_vars += 1;
            self.elim_stack.push((v, stored));
        }
        true
    }

    /// Phase 4: wholesale watch rebuild + compaction + re-propagation.
    fn rebuild_after_inprocess(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        for ws in &mut self.watches {
            ws.clear();
        }
        for ci in 0..self.clauses.len() {
            if self.clauses[ci].deleted {
                continue;
            }
            let range = self.clauses[ci].range();
            let satisfied = self.lit_arena[range.clone()]
                .iter()
                .any(|&l| value_of(&self.assign, l) == LBool::True);
            if satisfied {
                self.delete_clause(ci);
                continue;
            }
            // Move up to two non-false literals into the watch slots;
            // if fewer exist the clause is unit or conflicting, which
            // the full re-propagation below discovers through the
            // false watch.
            let s = range.start;
            let mut found = 0usize;
            for k in range {
                if found == 2 {
                    break;
                }
                if value_of(&self.assign, self.lit_arena[k]) != LBool::False {
                    self.lit_arena.swap(s + found, k);
                    found += 1;
                }
            }
            let l0 = self.lit_arena[s];
            let l1 = self.lit_arena[s + 1];
            self.watches[l0.index()].push(Watch { cref: ci as CRef, blocker: l1 });
            self.watches[l1.index()].push(Watch { cref: ci as CRef, blocker: l0 });
        }
        self.compact_deleted();
        self.qhead = 0;
        if self.propagate().is_some() {
            self.ok = false;
            self.log(ProofStep::Derived(Vec::new()));
        }
    }

    /// Reactivates any eliminated variable mentioned in `lits`: its
    /// stored original clauses return to the database (transitively —
    /// a stored clause may mention a variable eliminated later). The
    /// returning clauses are re-logged as `Input` steps; they are
    /// consequences of earlier inputs by construction (original clauses
    /// possibly strengthened by RUP-logged steps), and in-tree callers
    /// never add clauses mid-proof after elimination, so certificates
    /// are unaffected. Drops `ok` if a returning clause conflicts.
    pub(super) fn reintroduce_touched(&mut self, lits: &[Lit]) {
        if self.elim_stack.is_empty() {
            return;
        }
        let mut work: Vec<Var> = lits
            .iter()
            .map(|l| l.var())
            .filter(|v| self.elim.get(v.index()).copied().unwrap_or(false))
            .collect();
        if work.is_empty() {
            return;
        }
        let mut to_add: Vec<StoredClauses> = Vec::new();
        while let Some(v) = work.pop() {
            if !self.elim[v.index()] {
                continue;
            }
            self.elim[v.index()] = false;
            self.model_overlay[v.index()] = LBool::Undef;
            self.stats.eliminated_vars = self.stats.eliminated_vars.saturating_sub(1);
            self.order.insert(v, &self.activity);
            if let Some(pos) = self.elim_stack.iter().position(|(u, _)| *u == v) {
                let (_, stored) = self.elim_stack.remove(pos);
                for l in stored.all_lits() {
                    if self.elim[l.var().index()] {
                        work.push(l.var());
                    }
                }
                to_add.push(stored);
            }
        }
        // All flags are cleared before any clause returns, so the
        // nested `add_clause` calls cannot recurse back in here.
        for stored in &to_add {
            for c in stored.iter() {
                if !self.add_clause(c) {
                    return;
                }
            }
        }
    }

    /// Extends a `Sat` assignment over eliminated variables by replaying
    /// the elimination stack in reverse: each variable defaults to false
    /// unless one of its stored clauses is unsatisfied without it, in
    /// which case its literal in that clause decides the value. The
    /// elimination guarantee (every resolvent is in the database and
    /// satisfied) means the two polarities are never both forced.
    ///
    /// Stored clauses of `v` never mention a variable eliminated before
    /// `v` (its clauses were already deleted then), and variables
    /// eliminated after `v` are reconstructed first — so every literal
    /// read here is already valued.
    pub(super) fn reconstruct_model(&mut self) {
        if self.elim_stack.is_empty() {
            return;
        }
        for x in &mut self.model_overlay {
            *x = LBool::Undef;
        }
        for i in (0..self.elim_stack.len()).rev() {
            let (v, ref stored) = self.elim_stack[i];
            let mut forced = LBool::Undef;
            for c in stored.iter() {
                let mut sat_without = false;
                let mut vlit: Option<Lit> = None;
                for &l in c {
                    if l.var() == v {
                        vlit = Some(l);
                        continue;
                    }
                    if self.model_lit_truth(l) == LBool::True {
                        sat_without = true;
                        break;
                    }
                }
                if !sat_without {
                    if let Some(l) = vlit {
                        let need = if l.is_neg() { LBool::False } else { LBool::True };
                        debug_assert!(
                            forced == LBool::Undef || forced == need,
                            "both polarities forced: elimination was unsound"
                        );
                        forced = need;
                    }
                }
            }
            self.model_overlay[v.index()] = if forced == LBool::Undef {
                LBool::False
            } else {
                forced
            };
        }
    }

    /// Literal truth under the assignment, falling back to the
    /// reconstruction overlay for eliminated variables.
    fn model_lit_truth(&self, l: Lit) -> LBool {
        let a = match self.assign[l.var().index()] {
            LBool::Undef => self.model_overlay[l.var().index()],
            assigned => assigned,
        };
        a.under_sign(l.is_neg())
    }
}
