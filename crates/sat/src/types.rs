//! Core propositional types: variables, literals, solve results.

use std::fmt;

/// A propositional variable, numbered from 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// Returns the variable's index, usable as a dense array key.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `var << 1 | sign` where `sign == 1` means negated, so that
/// literals index dense arrays (e.g. watch lists) directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub u32);

impl Lit {
    /// The positive literal of `v`.
    #[inline]
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    #[inline]
    pub fn neg(v: Var) -> Lit {
        Lit(v.0 << 1 | 1)
    }

    /// Builds a literal from a variable and a sign (`true` = negated).
    #[inline]
    pub fn new(v: Var, negated: bool) -> Lit {
        Lit(v.0 << 1 | negated as u32)
    }

    /// The literal's variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is negated.
    #[inline]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The literal's index, usable as a dense array key.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.is_neg() { "!" } else { "" }, self.0 >> 1)
    }
}

/// The verdict of a [`crate::Solver::solve`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found; query it with
    /// [`crate::Solver::value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The solver gave up (conflict budget exhausted).
    Unknown,
    /// The search was cancelled from outside via the cooperative
    /// interrupt flag (see [`crate::Solver::set_interrupt`]).
    Interrupted,
}

/// A tri-state truth value used on the assignment trail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    /// The value of a literal whose variable has this value.
    #[inline]
    pub(crate) fn under_sign(self, negated: bool) -> LBool {
        match (self, negated) {
            (LBool::Undef, _) => LBool::Undef,
            (LBool::True, false) | (LBool::False, true) => LBool::True,
            _ => LBool::False,
        }
    }
}
