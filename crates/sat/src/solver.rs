//! The CDCL solver proper.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::heap::VarHeap;
use crate::luby::luby;
use crate::proof::ProofStep;
use crate::types::{LBool, Lit, SolveResult, Var};

/// SatELite-style inprocessing (subsumption, self-subsuming resolution,
/// bounded variable elimination). A child module of `solver` so it can
/// work directly on the private clause arena and watch lists.
#[path = "inprocess.rs"]
mod inprocess;

/// Reference to a clause in the solver's arena.
type CRef = u32;

/// A clause. Learnt clauses carry an LBD ("glue") score used by database
/// reduction; original clauses are never deleted.
/// Clause metadata; the literals live in the solver's flat `lit_arena`
/// at `[start, start + len)`. One shared arena (instead of a `Vec<Lit>`
/// per clause) keeps the literal blocks of clauses allocated together
/// physically adjacent, and lets `compact_deleted` defragment storage
/// after incremental sessions retire whole goals — per-clause heap
/// allocations would scatter surviving clauses across freed blocks and
/// cache-miss every propagation.
struct Clause {
    start: u32,
    len: u32,
    learnt: bool,
    lbd: u32,
    deleted: bool,
    /// The clause's id in the proof checker's database — the 0-based
    /// count of added proof steps at the moment this clause's current
    /// literal content was logged — or [`NO_PROOF_ID`] when the log
    /// never saw it. Variable elimination adds most resolvents
    /// *without* logging them (see `inprocess.rs`: their parents stay
    /// live in the checker and simulate them under unit propagation);
    /// deletions of such clauses must not be logged either, or the
    /// checker would reject the `Delete` of a clause it never saw.
    /// Logged clauses' ids are what LRAT-style antecedent hints are
    /// made of (see [`crate::ProofStep::DerivedHinted`]).
    proof_id: u32,
}

/// Sentinel for [`Clause::proof_id`]: the proof log never saw this
/// clause (logging off, or an elided elimination resolvent).
const NO_PROOF_ID: u32 = u32::MAX;

/// The original clauses of one eliminated variable, snapshotted for
/// model reconstruction and reintroduction — flattened into one literal
/// vector with clause-end offsets, because a `Vec` per stored clause
/// would dominate the allocation cost of elimination-heavy rounds.
struct StoredClauses {
    lits: Vec<Lit>,
    ends: Vec<u32>,
}

impl StoredClauses {
    fn new() -> StoredClauses {
        StoredClauses { lits: Vec::new(), ends: Vec::new() }
    }

    fn push(&mut self, clause: &[Lit]) {
        self.lits.extend_from_slice(clause);
        self.ends.push(self.lits.len() as u32);
    }

    /// The stored clauses, in insertion order.
    fn iter(&self) -> impl Iterator<Item = &[Lit]> + '_ {
        self.ends.iter().scan(0usize, move |start, &end| {
            let s = *start;
            *start = end as usize;
            Some(&self.lits[s..end as usize])
        })
    }

    /// Every literal of every stored clause.
    fn all_lits(&self) -> impl Iterator<Item = &Lit> + '_ {
        self.lits.iter()
    }
}

impl Clause {
    #[inline]
    fn range(&self) -> std::ops::Range<usize> {
        self.start as usize..(self.start + self.len) as usize
    }
}

/// A watcher entry: the watched clause plus a "blocker" literal that lets
/// propagation skip the clause without touching its memory when the blocker
/// is already true.
/// One-bit-per-level Bloom filter entry used by clause minimization.
fn abstract_level(level: u32) -> u32 {
    1u32 << (level & 31)
}

#[derive(Clone, Copy)]
struct Watch {
    cref: CRef,
    blocker: Lit,
}

/// Counters exposed for the symbolic profiler and the benchmark harness.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnts: u64,
    /// Literals dropped from learnt clauses by recursive minimization.
    pub minimized_lits: u64,
    /// Variables removed by bounded variable elimination (net of any
    /// later reintroductions; see [`Solver::set_inprocess`]).
    pub eliminated_vars: u64,
    /// Clauses deleted by backward subsumption.
    pub subsumed: u64,
    /// Literals removed by self-subsuming resolution (strengthening).
    pub strengthened: u64,
    /// Resolvent clauses added by variable elimination.
    pub resolvents: u64,
}

/// Restart-boundary phase policy (see [`Solver::set_rephase`]): what to
/// do to the saved phases every [`REPHASE_PERIOD`] restarts. The
/// portfolio races these modes so its variants search genuinely
/// different assignments, not just differently-paced copies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Rephase {
    /// Keep saved phases untouched (classic phase saving).
    #[default]
    Off,
    /// Invert every saved phase, sending the search to the complement
    /// of the assignment it has been circling.
    Invert,
    /// Reset every saved phase to the solver's default phase.
    Reset,
}

/// A CDCL SAT solver. See the crate documentation for an overview.
pub struct Solver {
    clauses: Vec<Clause>,
    /// Flat literal storage for all clauses; see [`Clause`].
    lit_arena: Vec<Lit>,
    watches: Vec<Vec<Watch>>,
    assign: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Option<CRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: VarHeap,
    phase: Vec<bool>,
    seen: Vec<bool>,
    /// False once the clause set is unsatisfiable at level 0.
    ok: bool,
    /// Assumptions for the current `solve_assuming` call.
    assumptions: Vec<Lit>,
    /// Subset of assumptions responsible for the last `Unsat` answer.
    conflict_core: Vec<Lit>,
    /// Learnt-clause count that triggers the next database reduction.
    max_learnts: f64,
    num_learnts: usize,
    /// Optional conflict budget; `None` = unbounded.
    budget: Option<u64>,
    /// Cooperative cancellation flag, polled at restart boundaries and
    /// every [`INTERRUPT_GRANULARITY`] conflicts.
    interrupt: Option<Arc<AtomicBool>>,
    /// Luby restart unit (conflicts per base restart interval).
    restart_base: u64,
    /// VSIDS activity decay factor.
    var_decay: f64,
    /// Initial saved phase for fresh variables.
    default_phase: bool,
    /// When set, VSIDS decisions are restricted to variables whose entry
    /// is `true` (variables past the end are out of scope). Incremental
    /// sessions use this to keep the search inside the cone of the
    /// current goal, skipping retired goals' dead gate variables.
    decision_scope: Option<Vec<bool>>,
    /// When set, bounded variable elimination is restricted to variables
    /// whose entry is `true` (variables past the end are not
    /// eliminable), *replacing* the decision-scope auto-freeze.
    /// Incremental sessions compute this mask from their retirement
    /// plan: a variable is eliminable once no future goal's encoding
    /// can mention its literals (see `Session::solve_negated`).
    eliminable: Option<Vec<bool>>,
    /// DRAT-style proof log; `None` = logging off (see
    /// [`Solver::set_proof_logging`]).
    proof: Option<Vec<ProofStep>>,
    /// Count of *added* steps (`Input`/`Derived`) in the proof log since
    /// logging began — the next added step's checker clause id. `Delete`
    /// steps do not count. Not reset by `take_proof`: an incremental
    /// session's checker replays every delta into one database, so ids
    /// keep counting across goals.
    proof_adds: u32,
    /// Whether learnt-clause `Derived` steps carry LRAT-style antecedent
    /// hints (see [`Solver::set_lrat_hints`]).
    lrat: bool,
    /// True while the current `analyze` call is collecting antecedents
    /// (proof logging on + `lrat`).
    collect_hints: bool,
    /// Antecedents of the learnt clause currently being analyzed:
    /// `(trail position of the implied literal, reason clause)` pairs,
    /// sorted ascending before emission so the checker's hinted walk
    /// makes each antecedent unit in turn.
    hint_buf: Vec<(u32, CRef)>,
    /// Trail position each variable was (last) assigned at; only read
    /// for currently-assigned variables during hint collection.
    trail_pos: Vec<u32>,
    /// Hint expansions for *elided* elimination resolvents (clauses with
    /// no proof id of their own): checker ids of the resolvent's live
    /// parents, ordered `[P, N, P]` so the checker's skip-tolerant
    /// hinted walk propagates whatever the resolvent would propagate
    /// (see `Solver::elided_expansion`). Keyed by clause ref; remapped
    /// on compaction, entries for deleted clauses dropped there.
    elided_hints: HashMap<CRef, Vec<u32>>,
    stats: SolverStats,
    /// Whether inprocessing (subsumption + self-subsuming resolution)
    /// runs at solve start and restart boundaries.
    inprocess_on: bool,
    /// Whether inprocessing may also run bounded variable elimination.
    /// Incremental sessions turn this off: future goals re-reference
    /// memoized gate literals, and the frozen decision-scope cone covers
    /// the whole live formula anyway.
    inprocess_bve: bool,
    /// Cumulative-conflict threshold for the next inprocessing round.
    inprocess_next: u64,
    /// Set when a variable-elimination pass ran to completion with the
    /// current clause set. Search never adds *original* clauses, so
    /// elimination opportunities only reappear when the embedder adds a
    /// clause (which clears this); until then later rounds skip the
    /// full-variable BVE scan and run subsumption only.
    bve_saturated: bool,
    /// Variables that must never be eliminated (assumption variables
    /// and anything the caller pinned via [`Solver::freeze_var`]).
    frozen: Vec<bool>,
    /// Variables currently eliminated by BVE: never decided, absent
    /// from every live clause, re-added on demand (see
    /// [`Solver::reintroduce_vars`]).
    elim: Vec<bool>,
    /// Model-reconstruction stack: for each eliminated variable, in
    /// elimination order, the original clauses that mentioned it.
    elim_stack: Vec<(Var, StoredClauses)>,
    /// Post-`Sat` values for eliminated variables, recomputed per solve
    /// by replaying `elim_stack` in reverse (SatELite-style model
    /// extension); consulted by [`Solver::value`] when `assign` is
    /// undefined.
    model_overlay: Vec<LBool>,
    /// Geometric restarts instead of Luby (see
    /// [`Solver::set_restart_geometric`]).
    restart_geometric: bool,
    /// Restart-boundary phase policy.
    rephase: Rephase,
}

const VAR_DECAY: f64 = 0.95;
const RESCALE_LIMIT: f64 = 1e100;
/// Initial learnt-clause budget; `reduce_db` fires when the live learnt
/// count exceeds the budget, which then grows geometrically.
const INITIAL_MAX_LEARNTS: f64 = 4096.0;
const RESTART_BASE: u64 = 128;
/// Conflicts between polls of the interrupt flag inside a restart
/// interval (restart boundaries always poll).
const INTERRUPT_GRANULARITY: u64 = 1024;
/// Clauses between polls of the interrupt flag inside database sweeps
/// (`reduce_db`, `simplify`). Sessions grow large learnt databases, and
/// a portfolio cancel must not wait out a full O(clauses) sweep.
const SWEEP_GRANULARITY: usize = 4096;
/// Conflicts between inprocessing rounds. The first round runs at solve
/// start (threshold 0); later rounds wait for this much new search so a
/// stream of easy incremental goals is not taxed with repeated sweeps.
const INPROCESS_INTERVAL: u64 = 4000;
/// Restarts between applications of the [`Rephase`] policy.
const REPHASE_PERIOD: u64 = 10;
/// Geometric restart growth factor (per restart, starting from
/// `restart_base`), the classic MiniSat-style alternative to Luby.
const GEOMETRIC_FACTOR: f64 = 1.2;

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            lit_arena: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order: VarHeap::default(),
            phase: Vec::new(),
            seen: Vec::new(),
            ok: true,
            assumptions: Vec::new(),
            conflict_core: Vec::new(),
            max_learnts: INITIAL_MAX_LEARNTS,
            num_learnts: 0,
            budget: None,
            interrupt: None,
            restart_base: RESTART_BASE,
            var_decay: VAR_DECAY,
            default_phase: false,
            decision_scope: None,
            eliminable: None,
            proof: None,
            proof_adds: 0,
            lrat: true,
            collect_hints: false,
            hint_buf: Vec::new(),
            trail_pos: Vec::new(),
            elided_hints: HashMap::new(),
            stats: SolverStats::default(),
            inprocess_on: true,
            inprocess_bve: true,
            inprocess_next: 0,
            bve_saturated: false,
            frozen: Vec::new(),
            elim: Vec::new(),
            elim_stack: Vec::new(),
            model_overlay: Vec::new(),
            restart_geometric: false,
            rephase: Rephase::Off,
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(self.default_phase);
        self.seen.push(false);
        self.trail_pos.push(0);
        self.frozen.push(false);
        self.elim.push(false);
        self.model_overlay.push(LBool::Undef);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow(self.assign.len());
        self.order.insert(v, &self.activity);
        v
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses added (including learnt, excluding deleted).
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.deleted).count()
    }

    /// Limits the search to `conflicts` conflicts; `solve` returns
    /// [`SolveResult::Unknown`] if exhausted. Pass `None` for no limit.
    pub fn set_conflict_budget(&mut self, conflicts: Option<u64>) {
        self.budget = conflicts;
    }

    /// Restricts VSIDS decisions to variables whose `scope` entry is
    /// `true` (variables at or past `scope.len()` are out of scope);
    /// `None` removes the restriction. Assumptions are always honoured
    /// regardless of scope, and propagation still assigns out-of-scope
    /// variables.
    ///
    /// This is only sound when every clause over out-of-scope variables
    /// is *extendable*: satisfiable by some completion of any conflict-
    /// free assignment of the in-scope variables (e.g. Tseitin gate
    /// definitions whose outputs are functionally determined, or guard
    /// clauses already satisfied at level 0). Incremental sessions
    /// guarantee this by scoping to the cone of the live goal plus the
    /// shared base; retired goals' gates are exactly such extensions.
    /// `Sat` then means "every in-scope variable assigned, no conflict",
    /// which under that contract extends to a total model.
    pub fn set_decision_scope(&mut self, scope: Option<Vec<bool>>) {
        self.decision_scope = scope;
        // Variables popped and skipped under an earlier scope are gone
        // from the order heap; re-offer every unassigned variable so the
        // new scope starts complete (insert is a no-op for present vars).
        for i in 0..self.assign.len() {
            if self.assign[i] == LBool::Undef {
                self.order.insert(Var(i as u32), &self.activity);
            }
        }
    }

    /// Installs a cooperative cancellation flag. While set, `solve`
    /// polls it at every restart boundary (and every
    /// [`INTERRUPT_GRANULARITY`] conflicts within a restart interval)
    /// and returns [`SolveResult::Interrupted`] once the flag is true.
    /// The solver stays usable afterwards — clear the flag and call
    /// `solve` again to resume from scratch.
    pub fn set_interrupt(&mut self, flag: Option<Arc<AtomicBool>>) {
        self.interrupt = flag;
    }

    /// Overrides the Luby restart unit (default 128 conflicts).
    pub fn set_restart_base(&mut self, conflicts: u64) {
        self.restart_base = conflicts.max(1);
    }

    /// Overrides the VSIDS activity decay factor (default 0.95). Values
    /// closer to 1.0 keep old activity relevant for longer.
    pub fn set_var_decay(&mut self, decay: f64) {
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0, 1]");
        self.var_decay = decay;
    }

    /// Sets the initial saved phase handed to variables created *after*
    /// this call (default `false`, i.e. branch negative first).
    pub fn set_default_phase(&mut self, phase: bool) {
        self.default_phase = phase;
    }

    /// Enables or disables inprocessing (default: on, with BVE). With
    /// `bve` false the rounds run subsumption and self-subsuming
    /// resolution only — both equivalence-preserving, safe under any
    /// use pattern. Incremental sessions pass `bve: false`: future
    /// goals re-reference memoized gate literals, so eliminating
    /// variables would only churn through reintroduction.
    pub fn set_inprocess(&mut self, enabled: bool, bve: bool) {
        self.inprocess_on = enabled;
        self.inprocess_bve = bve;
    }

    /// Pins `v` against bounded variable elimination. Assumption
    /// variables and decision-scope cones are frozen automatically at
    /// each inprocessing round; callers freeze anything else a future
    /// query will re-reference (activation literals, memoized gates).
    pub fn freeze_var(&mut self, v: Var) {
        self.frozen[v.index()] = true;
    }

    /// Restricts bounded variable elimination to variables whose `mask`
    /// entry is `true` (variables at or past `mask.len()` are not
    /// eliminable); `None` removes the restriction. While a mask is
    /// installed it *replaces* the decision-scope auto-freeze — the
    /// caller is asserting it knows exactly which variables can never
    /// be re-mentioned — so in-scope variables with a `true` entry
    /// become eliminable. [`Solver::freeze_var`] pins and assumption
    /// variables always win over the mask. Installing a mask re-opens
    /// elimination (clears the saturation latch): the new mask may
    /// permit variables the previous pass skipped.
    ///
    /// Eliminating a variable the embedder later re-mentions is safe —
    /// `add_clause`/`solve_assuming` transparently reintroduce its
    /// stored clauses first — but each such round trip is churn, so the
    /// mask should only admit variables with no planned future use.
    pub fn set_eliminable(&mut self, mask: Option<Vec<bool>>) {
        self.eliminable = mask;
        if self.eliminable.is_some() {
            self.bve_saturated = false;
        }
    }

    /// Switches restarts from Luby (the default) to a geometric series
    /// growing by [`GEOMETRIC_FACTOR`] per restart.
    pub fn set_restart_geometric(&mut self, on: bool) {
        self.restart_geometric = on;
    }

    /// Sets the restart-boundary phase policy (default [`Rephase::Off`]).
    pub fn set_rephase(&mut self, mode: Rephase) {
        self.rephase = mode;
    }

    #[inline]
    fn interrupted(&self) -> bool {
        self.interrupt
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// Solver statistics for profiling.
    pub fn stats(&self) -> SolverStats {
        let mut s = self.stats;
        s.learnts = self.num_learnts as u64;
        s
    }

    /// Enables or disables DRAT-style proof logging. Must be enabled
    /// *before* the first `add_clause` — input clauses added while
    /// logging is off are missing from the log, and certificates built
    /// from it would claim unsatisfiability of the wrong formula.
    /// Enabling clears any previous log.
    pub fn set_proof_logging(&mut self, on: bool) {
        self.proof = if on { Some(Vec::new()) } else { None };
        self.proof_adds = 0;
        // Stored expansions name checker ids of the old log.
        self.elided_hints.clear();
    }

    /// Enables or disables LRAT-style antecedent hints on learnt-clause
    /// proof steps (default: on; only effective while proof logging is
    /// on). Hints let the checker verify each learnt clause by an
    /// indexed walk over its antecedents instead of full watched-literal
    /// unit propagation; they never change which certificates are
    /// *accepted* by a fallback-checking verifier, only how fast.
    pub fn set_lrat_hints(&mut self, on: bool) {
        self.lrat = on;
    }

    /// Whether proof logging is on.
    pub fn proof_logging(&self) -> bool {
        self.proof.is_some()
    }

    /// Drains the proof steps logged since the last call (empty when
    /// logging is off). Incremental sessions drain once per goal, so the
    /// per-goal delta ends exactly at that goal's concluding clause.
    pub fn take_proof(&mut self) -> Vec<ProofStep> {
        self.proof.as_mut().map(std::mem::take).unwrap_or_default()
    }

    #[inline]
    fn log(&mut self, step: ProofStep) {
        if let Some(p) = &mut self.proof {
            if !matches!(step, ProofStep::Delete(_)) {
                self.proof_adds += 1;
            }
            p.push(step);
        }
    }

    /// Logs the deletion of clause `ci` (caller marks it deleted).
    /// No-op for clauses the proof log never saw (unlogged resolvents).
    fn log_delete(&mut self, ci: usize) {
        if self.proof.is_some() && self.clauses[ci].proof_id != NO_PROOF_ID {
            let lits = self.lit_arena[self.clauses[ci].range()].to_vec();
            self.log(ProofStep::Delete(lits));
        }
    }

    /// The checker clause id of the most recently logged added step
    /// (`Input`/`Derived`); only meaningful right after such a `log`.
    #[inline]
    fn last_proof_id(&self) -> u32 {
        if self.proof.is_some() {
            self.proof_adds - 1
        } else {
            NO_PROOF_ID
        }
    }

    /// Adds a clause. Returns `false` if the clause set became trivially
    /// unsatisfiable (all further solving returns `Unsat`).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        // A previous Sat answer leaves the model trail in place; clear it.
        self.backtrack(0);
        if !self.ok {
            return false;
        }
        // A fresh original clause reopens elimination opportunities.
        self.bve_saturated = false;
        // A clause over an eliminated variable reactivates it: its
        // original defining clauses come back first, so the new clause
        // constrains the variable the caller thinks it is constraining.
        self.reintroduce_touched(lits);
        if !self.ok {
            return false;
        }
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        // Tautologies constrain nothing and are not logged.
        for i in 0..c.len() {
            if i + 1 < c.len() && c[i + 1] == !c[i] {
                return true; // l and !l adjacent after sort
            }
        }
        // The clause as given (post sort/dedup) is part of the formula;
        // the level-0 strengthening below is re-derived by the checker
        // from the logged level-0 units.
        if self.proof.is_some() {
            self.log(ProofStep::Input(c.clone()));
        }
        // Drop literals already false at level 0; detect clauses already
        // satisfied at level 0.
        let mut out = Vec::with_capacity(c.len());
        for &l in &c {
            match self.value_lbool(l) {
                LBool::True => return true,
                LBool::False => {}
                LBool::Undef => out.push(l),
            }
        }
        if self.proof.is_some() && out != c {
            if out.is_empty() {
                // The conclusion of a refutation stays a plain
                // `Derived([])` — the checker accepts it from its
                // contradiction flag, and downstream consumers match
                // the unhinted form.
                self.log(ProofStep::Derived(out.clone()));
            } else {
                // The one antecedent is the Input step just logged:
                // after the checker negates `out`, the input's
                // remaining literals are exactly the level-0-false
                // ones it already holds persistently, so the clause is
                // falsified outright and the hinted walk concludes in
                // one indexed lookup (a full RUP pass re-derives the
                // same thing if the hint ever misses).
                let input_id = self.last_proof_id();
                self.log(ProofStep::DerivedHinted(out.clone(), vec![input_id]));
            }
        }
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(out[0], None);
                self.ok = self.propagate().is_none();
                if !self.ok {
                    self.log(ProofStep::Derived(Vec::new()));
                }
                self.ok
            }
            _ => {
                let cref = self.attach_new_clause(&out, false);
                // The clause content in the database is `out` — the id
                // of the step that introduced those exact literals
                // (the strengthened `Derived` when one was logged,
                // otherwise the `Input` itself).
                self.clauses[cref as usize].proof_id = self.last_proof_id();
                true
            }
        }
    }

    /// Retires an activation literal: hard-asserts `!act` at level 0 and
    /// sweeps the now-satisfied clauses out of the database. Used by
    /// incremental sessions — a goal guarded by `{!act, g}` is solved
    /// under the assumption `act`; once answered, retracting `act`
    /// permanently satisfies the guard clause (and any learnt clause
    /// mentioning `!act`), so later goals never revisit it.
    ///
    /// Returns `false` if the clause set became unsatisfiable (which can
    /// only happen if `act` was already forced true at level 0).
    pub fn retract(&mut self, act: Lit) -> bool {
        let ok = self.add_clause(&[!act]);
        self.simplify();
        ok
    }

    /// Resets the learnt-clause growth budget to its initial value.
    /// Incremental sessions call this at goal boundaries: within one
    /// search the budget grows geometrically so hard proofs can keep
    /// more clauses, but carrying the inflated budget across dozens of
    /// goals lets retained learnts pile up on the shared base cone and
    /// tax every later propagation. After a reset the next goal trims
    /// the carried database back down on its first `reduce_db`, keeping
    /// the lowest-LBD survivors that cross-goal reuse actually wants.
    pub fn reset_learnt_budget(&mut self) {
        self.max_learnts = INITIAL_MAX_LEARNTS;
    }

    /// Removes clauses satisfied at decision level 0 from the database.
    /// Safe at any time: the solver backtracks to level 0 first (wiping
    /// any Sat model trail). Polls the cooperative-interrupt flag every
    /// [`SWEEP_GRANULARITY`] clauses and bails early when set — an
    /// incomplete sweep leaves extra satisfied clauses behind, which is
    /// only a missed cleanup, never unsound.
    pub fn simplify(&mut self) {
        self.backtrack(0);
        if !self.ok {
            return;
        }
        if self.propagate().is_some() {
            self.ok = false;
            self.log(ProofStep::Derived(Vec::new()));
            return;
        }
        // Level-0 assignments are permanent facts: their reason clauses
        // are never needed again (conflict analysis skips level 0), so
        // clear them before deleting clauses they might point into.
        for i in 0..self.trail.len() {
            self.reason[self.trail[i].var().index()] = None;
        }
        for ci in 0..self.clauses.len() {
            if ci % SWEEP_GRANULARITY == 0 && self.interrupted() {
                return;
            }
            if self.clauses[ci].deleted {
                continue;
            }
            let satisfied = self.lit_arena[self.clauses[ci].range()]
                .iter()
                .any(|&l| value_of(&self.assign, l) == LBool::True);
            if satisfied {
                self.log_delete(ci);
                let c = &mut self.clauses[ci];
                c.deleted = true;
                if c.learnt {
                    self.num_learnts -= 1;
                }
            }
        }
        self.compact_deleted();
    }

    /// Deletes every clause mentioning a variable marked in `garbage`
    /// (variables past the end are not garbage). Used by incremental
    /// sessions to retire a dead goal's gate clauses outright.
    ///
    /// # Soundness contract
    ///
    /// Callers may only mark variables whose remaining clauses are
    /// *conservative extensions* of the rest: Tseitin gates of retired
    /// goals (functionally determined by their inputs, referenced by no
    /// future goal) qualify — any model of the surviving clause set
    /// extends over them, so deleting the clauses (including learnts
    /// that mention the variables, which may have been derived *from*
    /// those gates) changes no future verdict.
    pub fn purge_vars(&mut self, garbage: &[bool]) {
        self.backtrack(0);
        if !self.ok {
            return;
        }
        for i in 0..self.trail.len() {
            self.reason[self.trail[i].var().index()] = None;
        }
        for ci in 0..self.clauses.len() {
            if ci % SWEEP_GRANULARITY == 0 && self.interrupted() {
                // Bail early on cancellation: an incomplete purge only
                // leaves extra (conservative) clauses behind.
                return;
            }
            if self.clauses[ci].deleted {
                continue;
            }
            let hit = self.lit_arena[self.clauses[ci].range()]
                .iter()
                .any(|l| garbage.get(l.var().index()).copied().unwrap_or(false));
            if hit {
                self.log_delete(ci);
                let c = &mut self.clauses[ci];
                c.deleted = true;
                if c.learnt {
                    self.num_learnts -= 1;
                }
            }
        }
        // An eliminated variable whose stored clauses mention garbage
        // cannot be reconstructed once those clauses' variables lose
        // their values — and with session-scoped elimination the
        // variable may be a *base* gate that later countermodels still
        // read (and that other reconstruction entries chain through).
        // Reintroduce such variables (always sound; their garbage-
        // mentioning parents come back and are deleted by the sweep
        // below on the next purge — or already were by the sweep above,
        // which is exactly the conservative deletion this function's
        // contract licenses), rather than dropping the entry and
        // leaving a permanently unreconstructable hole.
        let stranded: Vec<Lit> = self
            .elim_stack
            .iter()
            .filter(|(_, stored)| {
                stored
                    .all_lits()
                    .any(|l| garbage.get(l.var().index()).copied().unwrap_or(false))
            })
            .map(|&(v, _)| Lit::pos(v))
            .collect();
        if !stranded.is_empty() {
            self.reintroduce_touched(&stranded);
            // The returning parents may themselves mention garbage:
            // delete those immediately (they are exactly the clauses
            // the purge contract covers).
            for ci in 0..self.clauses.len() {
                if self.clauses[ci].deleted {
                    continue;
                }
                let hit = self.lit_arena[self.clauses[ci].range()]
                    .iter()
                    .any(|l| garbage.get(l.var().index()).copied().unwrap_or(false));
                if hit {
                    self.log_delete(ci);
                    let c = &mut self.clauses[ci];
                    c.deleted = true;
                    if c.learnt {
                        self.num_learnts -= 1;
                    }
                }
            }
        }
        debug_assert!(self.elim_stack.iter().all(|(_, stored)| {
            !stored
                .all_lits()
                .any(|l| garbage.get(l.var().index()).copied().unwrap_or(false))
        }));
        self.compact_deleted();
    }

    /// Physically removes deleted clauses: live clauses (and their
    /// literal blocks in the arena) slide down into the freed slots and
    /// every watcher is remapped to the new clause index. Deleted
    /// clauses are normally dropped from watch lists lazily in
    /// propagate, but a long incremental session retires whole goals at
    /// a time — leaving their slots in place scatters the surviving
    /// clauses across dead storage, and every later propagation
    /// cache-misses on the gaps. Only callable at level 0 with all
    /// reasons cleared (backtrack(0) clears reasons for unassigned
    /// vars; the callers clear the level-0 trail's), so watch lists
    /// hold the only clause references left to remap.
    fn compact_deleted(&mut self) {
        let mut remap: Vec<CRef> = vec![CRef::MAX; self.clauses.len()];
        let mut next = 0usize;
        let mut arena_next = 0usize;
        for ci in 0..self.clauses.len() {
            if !self.clauses[ci].deleted {
                remap[ci] = next as CRef;
                // Clause arena starts are monotone in clause index
                // (attach order, preserved by compaction), so the
                // destination never overruns the source.
                let r = self.clauses[ci].range();
                debug_assert!(arena_next <= r.start);
                let len = r.len();
                self.lit_arena.copy_within(r, arena_next);
                self.clauses[ci].start = arena_next as u32;
                arena_next += len;
                if next != ci {
                    self.clauses.swap(next, ci);
                }
                next += 1;
            }
        }
        self.clauses.truncate(next);
        self.lit_arena.truncate(arena_next);
        if !self.elided_hints.is_empty() {
            self.elided_hints = std::mem::take(&mut self.elided_hints)
                .into_iter()
                .filter_map(|(c, exp)| {
                    let nc = remap[c as usize];
                    (nc != CRef::MAX).then_some((nc, exp))
                })
                .collect();
        }
        for ws in &mut self.watches {
            ws.retain_mut(|w| {
                let nc = remap[w.cref as usize];
                if nc == CRef::MAX {
                    return false;
                }
                w.cref = nc;
                true
            });
        }
    }

    /// Solves the current clause set with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_assuming(&[])
    }

    /// Solves under the given assumption literals.
    ///
    /// On `Unsat`, [`Solver::unsat_core`] returns the subset of assumptions
    /// used in the refutation.
    pub fn solve_assuming(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.conflict_core.clear();
        if !self.ok {
            // The empty clause was already derived in an earlier call;
            // re-log it so this call's proof delta still ends in the
            // concluding clause (trivially accepted by the checker).
            self.log(ProofStep::Derived(Vec::new()));
            return SolveResult::Unsat;
        }
        // An assumption over an eliminated variable reactivates it (its
        // defining clauses are gone from the database, so assuming it
        // would otherwise constrain nothing).
        self.reintroduce_touched(assumptions);
        if !self.ok {
            self.log(ProofStep::Derived(Vec::new()));
            return SolveResult::Unsat;
        }
        self.assumptions = assumptions.to_vec();
        let result = self.search_loop();
        if result == SolveResult::Sat {
            // Extend the model over eliminated variables before the
            // caller reads it.
            self.reconstruct_model();
        } else {
            self.backtrack(0);
        }
        // On Sat, keep the trail so `value` reads the full model; the next
        // solve call restarts from level 0 via backtrack below.
        result
    }

    /// The subset of assumption literals in the final conflict of the last
    /// `Unsat` answer from [`Solver::solve_assuming`].
    pub fn unsat_core(&self) -> &[Lit] {
        &self.conflict_core
    }

    /// The model value of `v` after a `Sat` answer. Eliminated
    /// variables read from the reconstruction overlay (see
    /// [`Solver::reconstruct_model`][Self::solve_assuming]).
    pub fn value(&self, v: Var) -> Option<bool> {
        let raw = match self.assign[v.index()] {
            LBool::Undef => self.model_overlay[v.index()],
            assigned => assigned,
        };
        match raw {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// The model value of a literal after a `Sat` answer.
    pub fn value_lit(&self, l: Lit) -> Option<bool> {
        self.value(l.var()).map(|b| b != l.is_neg())
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    fn search_loop(&mut self) -> SolveResult {
        self.backtrack(0);
        self.maybe_inprocess();
        if !self.ok {
            return SolveResult::Unsat;
        }
        let mut restart_idx: u64 = 0;
        loop {
            if self.interrupted() {
                return SolveResult::Interrupted;
            }
            restart_idx += 1;
            let budget = if self.restart_geometric {
                // f64→u64 casts saturate, so overflow after many
                // restarts just means "no further restarts".
                (self.restart_base as f64 * GEOMETRIC_FACTOR.powi(restart_idx as i32 - 1))
                    as u64
            } else {
                luby(restart_idx) * self.restart_base
            };
            match self.search(budget) {
                Some(r) => return r,
                None => {
                    // Restart: keep learnt clauses and saved phases.
                    self.stats.restarts += 1;
                    self.backtrack(0);
                    if restart_idx % REPHASE_PERIOD == 0 {
                        self.apply_rephase();
                    }
                    self.maybe_inprocess();
                    if !self.ok {
                        return SolveResult::Unsat;
                    }
                }
            }
        }
    }

    /// Runs an inprocessing round at this level-0 boundary if enough
    /// conflicts have accumulated since the last one. On `false` return
    /// of `ok` the round itself logged the concluding empty clause.
    fn maybe_inprocess(&mut self) {
        if self.inprocess_on && self.ok && self.stats.conflicts >= self.inprocess_next {
            self.inprocess();
            self.inprocess_next = self.stats.conflicts + INPROCESS_INTERVAL;
        }
    }

    /// Applies the [`Rephase`] policy to every saved phase.
    fn apply_rephase(&mut self) {
        match self.rephase {
            Rephase::Off => {}
            Rephase::Invert => {
                for p in &mut self.phase {
                    *p = !*p;
                }
            }
            Rephase::Reset => {
                let d = self.default_phase;
                for p in &mut self.phase {
                    *p = d;
                }
            }
        }
    }

    /// Runs CDCL for up to `conflict_budget` conflicts. Returns `None` to
    /// request a restart.
    fn search(&mut self, conflict_budget: u64) -> Option<SolveResult> {
        let mut conflicts_here: u64 = 0;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if let Some(total) = self.budget {
                    if self.stats.conflicts > total {
                        return Some(SolveResult::Unknown);
                    }
                }
                if conflicts_here % INTERRUPT_GRANULARITY == 0 && self.interrupted() {
                    return Some(SolveResult::Interrupted);
                }
                if self.decision_level() == 0 {
                    self.ok = false;
                    self.log(ProofStep::Derived(Vec::new()));
                    return Some(SolveResult::Unsat);
                }
                let (learnt, back_level, lbd) = self.analyze(confl);
                if self.proof.is_some() {
                    match self.take_hints(confl) {
                        Some(hints) => {
                            self.log(ProofStep::DerivedHinted(learnt.clone(), hints))
                        }
                        None => self.log(ProofStep::Derived(learnt.clone())),
                    }
                }
                self.backtrack(back_level);
                if learnt.len() == 1 {
                    debug_assert_eq!(self.decision_level(), 0);
                    self.unchecked_enqueue(learnt[0], None);
                } else {
                    let first = learnt[0];
                    let cref = self.attach_new_clause(&learnt, true);
                    self.clauses[cref as usize].lbd = lbd;
                    self.clauses[cref as usize].proof_id = self.last_proof_id();
                    self.unchecked_enqueue(first, Some(cref));
                }
                self.decay_activities();
                if self.num_learnts as f64 > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.5;
                }
                if conflicts_here >= conflict_budget {
                    return None; // restart
                }
            } else {
                // No conflict: place assumptions, then decide by VSIDS.
                match self.pick_branch() {
                    Decision::Sat => return Some(SolveResult::Sat),
                    Decision::AssumptionConflict(l) => {
                        self.analyze_final(l);
                        if self.proof.is_some() {
                            // The conflict core A ⊆ assumptions was refuted:
                            // the clause {!a : a ∈ A} is implied by the
                            // database and concludes this solve's proof.
                            let core: Vec<Lit> =
                                self.conflict_core.iter().map(|&a| !a).collect();
                            self.log(ProofStep::Derived(core));
                        }
                        return Some(SolveResult::Unsat);
                    }
                    Decision::Took => {}
                }
            }
        }
    }

    fn pick_branch(&mut self) -> Decision {
        // First honor pending assumptions, one decision level each.
        while (self.decision_level() as usize) < self.assumptions.len() {
            let a = self.assumptions[self.decision_level() as usize];
            match self.value_lbool(a) {
                LBool::True => {
                    // Already implied: open an empty decision level so the
                    // level↔assumption-index correspondence is kept.
                    self.trail_lim.push(self.trail.len());
                }
                LBool::False => return Decision::AssumptionConflict(a),
                LBool::Undef => {
                    self.trail_lim.push(self.trail.len());
                    self.unchecked_enqueue(a, None);
                    self.stats.decisions += 1;
                    return Decision::Took;
                }
            }
        }
        // Then VSIDS.
        while let Some(v) = self.order.pop(&self.activity) {
            // Eliminated variables are absent from every live clause;
            // deciding them would only pad the trail (reintroduction
            // re-offers them to the heap).
            if self.elim[v.index()] {
                continue;
            }
            // Out-of-scope variables are dropped for the rest of this
            // solve (set_decision_scope re-offers them to the heap).
            if let Some(scope) = &self.decision_scope {
                if !scope.get(v.index()).copied().unwrap_or(false) {
                    continue;
                }
            }
            if self.assign[v.index()] == LBool::Undef {
                let lit = Lit::new(v, !self.phase[v.index()]);
                self.trail_lim.push(self.trail.len());
                self.unchecked_enqueue(lit, None);
                self.stats.decisions += 1;
                return Decision::Took;
            }
        }
        Decision::Sat
    }

    // ------------------------------------------------------------------
    // Propagation
    // ------------------------------------------------------------------

    fn propagate(&mut self) -> Option<CRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            // Take the watch list for !p; clauses watching !p must find a
            // new watch, propagate, or conflict.
            let mut ws = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0;
            let mut conflict: Option<CRef> = None;
            'outer: while i < ws.len() {
                let w = ws[i];
                if self.value_lbool(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let cref = w.cref;
                let clause = &self.clauses[cref as usize];
                if clause.deleted {
                    ws.swap_remove(i);
                    continue;
                }
                let lits = &mut self.lit_arena[clause.range()];
                // Normalize: watched literals are lits[0] and lits[1]; put
                // the false literal in position 1.
                if lits[0] == false_lit {
                    lits.swap(0, 1);
                }
                debug_assert_eq!(lits[1], false_lit);
                let first = lits[0];
                if first != w.blocker
                    && value_of(&self.assign, first) == LBool::True
                {
                    ws[i] = Watch {
                        cref,
                        blocker: first,
                    };
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                for k in 2..lits.len() {
                    let l = lits[k];
                    if value_of(&self.assign, l) != LBool::False {
                        lits.swap(1, k);
                        let new_watch = lits[1];
                        self.watches[new_watch.index()].push(Watch {
                            cref,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        continue 'outer;
                    }
                }
                // No new watch: clause is unit or conflicting.
                ws[i] = Watch {
                    cref,
                    blocker: first,
                };
                i += 1;
                if value_of(&self.assign, first) == LBool::False {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    break;
                } else {
                    self.unchecked_enqueue(first, Some(cref));
                }
            }
            // Merge back: propagation may have appended new watches for
            // false_lit (self-watch is impossible, but keep it robust).
            let appended = std::mem::replace(&mut self.watches[false_lit.index()], ws);
            self.watches[false_lit.index()].extend(appended);
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn value_lbool(&self, l: Lit) -> LBool {
        value_of(&self.assign, l)
    }

    fn unchecked_enqueue(&mut self, l: Lit, from: Option<CRef>) {
        debug_assert_eq!(self.value_lbool(l), LBool::Undef);
        let v = l.var();
        self.assign[v.index()] = if l.is_neg() {
            LBool::False
        } else {
            LBool::True
        };
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = from;
        self.phase[v.index()] = !l.is_neg();
        self.trail_pos[v.index()] = self.trail.len() as u32;
        self.trail.push(l);
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn backtrack(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let keep = self.trail_lim[target as usize];
        for i in (keep..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.assign[v.index()] = LBool::Undef;
            self.reason[v.index()] = None;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(keep);
        self.trail_lim.truncate(target as usize);
        self.qhead = keep;
    }

    // ------------------------------------------------------------------
    // Conflict analysis
    // ------------------------------------------------------------------

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first, second-highest-level literal second), the backtrack
    /// level, and the clause LBD.
    fn analyze(&mut self, confl: CRef) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0 for the UIP
        let mut marked: Vec<Var> = Vec::new();
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut idx = self.trail.len();
        let mut cref = confl;
        // Collect the resolution antecedents (every reason clause this
        // analysis consults) for the learnt clause's LRAT hint; see
        // `take_hints`.
        self.collect_hints = self.lrat && self.proof.is_some();
        self.hint_buf.clear();
        loop {
            {
                let start = if p.is_some() { 1 } else { 0 };
                let range = self.clauses[cref as usize].range();
                let clause_lits = self.lit_arena[range][start..].to_vec();
                for q in clause_lits {
                    let v = q.var();
                    if !self.seen[v.index()] && self.level[v.index()] > 0 {
                        self.seen[v.index()] = true;
                        marked.push(v);
                        self.bump_var(v);
                        if self.level[v.index()] >= self.decision_level() {
                            counter += 1;
                        } else {
                            learnt.push(q);
                        }
                    }
                }
            }
            // Walk the trail backwards to the next seen literal at the
            // current decision level.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().index()] {
                    break;
                }
            }
            let lit = self.trail[idx];
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            cref = self.reason[lit.var().index()]
                .expect("non-decision literal at conflict level must have a reason");
            if self.collect_hints {
                self.hint_buf.push((idx as u32, cref));
            }
            p = Some(lit);
        }
        learnt[0] = !p.unwrap();

        // Clause minimization: drop literals whose negations are implied
        // by the rest of the clause, following reason chains recursively
        // (MiniSat's ccmin-mode=2). Removed literals stay marked, so a
        // later literal may be subsumed through an earlier removed one.
        let abstract_levels = learnt[1..]
            .iter()
            .fold(0u32, |acc, l| acc | abstract_level(self.level[l.var().index()]));
        let mut kept: Vec<Lit> = Vec::with_capacity(learnt.len() - 1);
        for i in 1..learnt.len() {
            let l = learnt[i];
            if self.reason[l.var().index()].is_some()
                && self.lit_redundant(l, abstract_levels, &mut marked)
            {
                self.stats.minimized_lits += 1;
            } else {
                kept.push(l);
            }
        }
        learnt.truncate(1);
        learnt.extend(kept);

        // Compute backtrack level (second-highest level in the clause) and
        // move that literal to position 1 for watching.
        let mut back_level = 0;
        if learnt.len() > 1 {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            back_level = self.level[learnt[1].var().index()];
        }

        // LBD: number of distinct decision levels in the clause.
        let mut levels: Vec<u32> = learnt
            .iter()
            .map(|l| self.level[l.var().index()])
            .collect();
        levels.sort_unstable();
        levels.dedup();
        let lbd = levels.len() as u32;

        // Clear every mark set during this analysis, including literals
        // dropped by minimization (a stale mark corrupts later analyses).
        for v in marked {
            self.seen[v.index()] = false;
        }
        (learnt, back_level, lbd)
    }

    /// Converts the antecedents collected by the last `analyze` call
    /// into an LRAT hint: checker clause ids ordered so that, with the
    /// learnt clause's negation asserted, each antecedent in turn is
    /// unit (ascending trail position of its implied literal) and the
    /// conflict clause — last — is falsified. An antecedent unknown to
    /// the proof log (an elided elimination resolvent) is spliced into
    /// its stored parent expansion, which simulates it under the
    /// checker's skip-tolerant walk; returns `None` only when an elided
    /// antecedent has no expansion either (the step is then logged
    /// unhinted rather than with a hint the checker would only fall
    /// back from).
    fn take_hints(&mut self, confl: CRef) -> Option<Vec<u32>> {
        if !self.collect_hints {
            return None;
        }
        self.collect_hints = false;
        let mut buf = std::mem::take(&mut self.hint_buf);
        buf.sort_unstable_by_key(|&(pos, _)| pos);
        let mut ids: Vec<u32> = Vec::with_capacity(buf.len() + 1);
        let mut ok = true;
        for &(_, cref) in buf.iter().chain(std::iter::once(&(u32::MAX, confl))) {
            match self.clauses[cref as usize].proof_id {
                NO_PROOF_ID => match self.elided_hints.get(&cref) {
                    Some(exp) => ids.extend_from_slice(exp),
                    None => {
                        ok = false;
                        break;
                    }
                },
                pid => ids.push(pid),
            }
        }
        buf.clear();
        self.hint_buf = buf;
        if ok {
            Some(ids)
        } else {
            None
        }
    }

    /// Whether learnt-clause literal `l` is redundant: following reason
    /// chains, every path from `l` bottoms out in literals already in the
    /// clause (seen) or fixed at level 0. Iterative DFS over the
    /// implication graph; `abstract_levels` is a 32-bit Bloom filter of
    /// the clause's decision levels — a reason literal from a level with
    /// no clause literal can never be subsumed, so the walk fails fast.
    ///
    /// Literals proven redundant along the way are marked `seen` (and
    /// recorded in `marked` for end-of-analysis cleanup) so overlapping
    /// chains are walked once; on failure the marks added by this call
    /// are rolled back.
    fn lit_redundant(&mut self, l: Lit, abstract_levels: u32, marked: &mut Vec<Var>) -> bool {
        let top = marked.len();
        let hint_top = self.hint_buf.len();
        let mut stack: Vec<Lit> = vec![l];
        while let Some(p) = stack.pop() {
            let cref = self.reason[p.var().index()]
                .expect("only literals with reasons are pushed");
            if self.collect_hints {
                // The dropped literal's implication chain is part of the
                // learnt clause's derivation: the checker's hinted walk
                // re-propagates it (recorded only if this call succeeds).
                self.hint_buf.push((self.trail_pos[p.var().index()], cref));
            }
            let range = self.clauses[cref as usize].range();
            let clause_lits = self.lit_arena[range].to_vec();
            for q in clause_lits {
                let v = q.var();
                if v == p.var() || self.seen[v.index()] || self.level[v.index()] == 0 {
                    continue;
                }
                if self.reason[v.index()].is_none()
                    || abstract_level(self.level[v.index()]) & abstract_levels == 0
                {
                    for &u in &marked[top..] {
                        self.seen[u.index()] = false;
                    }
                    marked.truncate(top);
                    self.hint_buf.truncate(hint_top);
                    return false;
                }
                self.seen[v.index()] = true;
                marked.push(v);
                stack.push(q);
            }
        }
        true
    }

    /// Builds the unsat core when assumption `failed` is falsified by the
    /// earlier assumptions: traces reasons back to assumption decisions.
    fn analyze_final(&mut self, failed: Lit) {
        self.conflict_core.clear();
        self.conflict_core.push(failed);
        if self.decision_level() == 0 {
            return;
        }
        let mut marked: Vec<Var> = Vec::new();
        self.seen[failed.var().index()] = true;
        marked.push(failed.var());
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let t = self.trail[i];
            let v = t.var();
            if !self.seen[v.index()] {
                continue;
            }
            match self.reason[v.index()] {
                Some(cref) => {
                    let range = self.clauses[cref as usize].range();
                    for k in range {
                        let q = self.lit_arena[k];
                        let qv = q.var();
                        if qv != v && !self.seen[qv.index()] && self.level[qv.index()] > 0 {
                            self.seen[qv.index()] = true;
                            marked.push(qv);
                        }
                    }
                }
                None => {
                    // A decision below the assumption levels is always an
                    // assumption literal.
                    self.conflict_core.push(t);
                }
            }
        }
        for v in marked {
            self.seen[v.index()] = false;
        }
        self.conflict_core.sort_unstable();
        self.conflict_core.dedup();
    }

    // ------------------------------------------------------------------
    // Activities and clause database
    // ------------------------------------------------------------------

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a /= RESCALE_LIMIT;
            }
            self.var_inc /= RESCALE_LIMIT;
        }
        self.order.decrease_key(v, &self.activity);
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.var_decay;
    }

    fn attach_new_clause(&mut self, lits: &[Lit], learnt: bool) -> CRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as CRef;
        let w0 = lits[0];
        let w1 = lits[1];
        self.watches[w0.index()].push(Watch { cref, blocker: w1 });
        self.watches[w1.index()].push(Watch { cref, blocker: w0 });
        if learnt {
            self.num_learnts += 1;
        }
        let start = self.lit_arena.len() as u32;
        self.lit_arena.extend_from_slice(lits);
        self.clauses.push(Clause {
            start,
            len: lits.len() as u32,
            learnt,
            lbd: 0,
            deleted: false,
            proof_id: NO_PROOF_ID,
        });
        cref
    }

    /// Deletes roughly half of the learnt clauses, preferring high LBD.
    /// Clauses that are the reason for a current assignment are kept.
    ///
    /// Activation-literal aware: learnt clauses already satisfied at
    /// level 0 (typically via a retracted activation literal, see
    /// [`Solver::retract`]) are dead weight from retired goals — they
    /// are deleted outright, before and not counted against the LBD
    /// halving, so retired-goal garbage cannot crowd out live learnts.
    ///
    /// Polls the cooperative-interrupt flag every [`SWEEP_GRANULARITY`]
    /// clauses; an interrupted sweep just reduces less.
    fn reduce_db(&mut self) {
        let locked: Vec<bool> = {
            let mut locked = vec![false; self.clauses.len()];
            for v in 0..self.assign.len() {
                if let Some(cref) = self.reason[v] {
                    locked[cref as usize] = true;
                }
            }
            locked
        };
        let mut learnt_refs: Vec<CRef> = Vec::new();
        for c in 0..self.clauses.len() {
            if c % SWEEP_GRANULARITY == 0 && self.interrupted() {
                return;
            }
            let cl = &self.clauses[c];
            if !cl.learnt || cl.deleted || locked[c] {
                continue;
            }
            let dead = self.lit_arena[cl.range()].iter().any(|&l| {
                value_of(&self.assign, l) == LBool::True && self.level[l.var().index()] == 0
            });
            if dead {
                self.log_delete(c);
                self.clauses[c].deleted = true;
                self.num_learnts -= 1;
            } else if cl.len > 2 {
                learnt_refs.push(c as CRef);
            }
        }
        learnt_refs.sort_by_key(|&c| std::cmp::Reverse(self.clauses[c as usize].lbd));
        let to_delete = learnt_refs.len() / 2;
        for &c in &learnt_refs[..to_delete] {
            self.log_delete(c as usize);
            self.clauses[c as usize].deleted = true;
            self.num_learnts -= 1;
        }
        // Deleted clauses are dropped from watch lists lazily in propagate.
    }
}

#[inline]
fn value_of(assign: &[LBool], l: Lit) -> LBool {
    assign[l.var().index()].under_sign(l.is_neg())
}

enum Decision {
    Took,
    Sat,
    AssumptionConflict(Lit),
}
