//! DRAT-style proof logging types.
//!
//! When proof logging is enabled (see [`crate::Solver::set_proof_logging`]),
//! the solver records every clause it adds, derives, or deletes as a
//! [`ProofStep`]. An `Unsat` answer is then backed by a *certificate*: the
//! ordered step log, ending in a derived clause that contains only negated
//! assumption literals (the empty clause when solving without assumptions).
//! The `serval-drat` crate checks such certificates by reverse unit
//! propagation, independently of the solver's own data structures.
//!
//! The logging discipline mirrors drat-trim's input conventions:
//!
//! - `Input` steps are taken on faith — they *are* the formula whose
//!   unsatisfiability the certificate claims. This includes activation-
//!   literal retraction units (`!act` asserted by [`crate::Solver::retract`]):
//!   an incremental session's per-goal claim is phrased over the inputs
//!   logged so far, so the retraction unit is part of the formula for
//!   every later goal.
//! - `Derived` steps must each be implied by the clauses currently in the
//!   checker's database (reverse unit propagation); this covers learnt
//!   clauses (including ccmin-2-minimized ones), input clauses strengthened
//!   by level-0 literal elimination, assumption-core conflict clauses, and
//!   the empty clause.
//! - `Delete` steps must name a clause previously added and not yet
//!   deleted; the checker drops it. Unit propagation already performed
//!   stays in force (the drat-trim convention), so deletions can only make
//!   later `Derived` checks *harder*, never unsound.

use crate::types::Lit;

/// One entry in a solver's proof log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofStep {
    /// A clause asserted from outside (part of the formula being refuted).
    /// The empty input clause encodes a constant-false assertion.
    Input(Vec<Lit>),
    /// A clause the solver claims follows from the database (checked by
    /// reverse unit propagation).
    Derived(Vec<Lit>),
    /// Like [`ProofStep::Derived`], but carrying LRAT-style antecedent
    /// hints: the ids of the clauses whose unit propagations, taken in
    /// order under the negated clause, end in a conflict. Ids are
    /// 0-based counts of *added* steps (`Input` and either `Derived`
    /// kind; `Delete` does not count) since logging began — exactly the
    /// order a replaying checker numbers its database. Hints are a
    /// performance contract, not a soundness one: a checker may verify
    /// the step by the hinted walk alone (indexed lookup instead of
    /// watch-driven propagation) and must fall back to full reverse
    /// unit propagation — or reject — when a hint is absent or wrong,
    /// so a bad hint can only ever cost acceptance, never soundness.
    DerivedHinted(Vec<Lit>, Vec<u32>),
    /// A clause removed from the database (`simplify`, `purge_vars`,
    /// `reduce_db` sweeps).
    Delete(Vec<Lit>),
}

impl ProofStep {
    /// The step's literals, regardless of kind.
    pub fn lits(&self) -> &[Lit] {
        match self {
            ProofStep::Input(l)
            | ProofStep::Derived(l)
            | ProofStep::DerivedHinted(l, _)
            | ProofStep::Delete(l) => l,
        }
    }
}
