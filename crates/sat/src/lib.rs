//! A CDCL SAT solver.
//!
//! This crate is the bottom of the Serval-reproduction verification stack
//! (paper Fig. 1). The original Serval discharges verification conditions
//! with Z3; this reproduction bit-blasts bitvector constraints (see the
//! `serval-smt` crate) and decides the resulting propositional formula with
//! the conflict-driven clause-learning solver implemented here.
//!
//! The solver implements the standard modern architecture:
//!
//! - two-watched-literal unit propagation,
//! - first-UIP conflict analysis with clause minimization,
//! - exponential VSIDS variable activities with a binary-heap order,
//! - phase saving (with optional restart-boundary rephasing),
//! - Luby-sequence restarts (or a geometric series, for portfolio
//!   diversity),
//! - LBD ("glue")-based learnt-clause database reduction,
//! - SatELite-style inprocessing at level-0 boundaries — backward
//!   subsumption, self-subsuming resolution, and bounded variable
//!   elimination with model reconstruction — every step logged to the
//!   DRAT proof so certified mode survives it, and
//! - incremental solving under assumptions with final-conflict (core)
//!   extraction.
//!
//! # Examples
//!
//! ```
//! use serval_sat::{Solver, Lit, SolveResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::neg(a)]);
//! assert_eq!(s.solve(), SolveResult::Sat);
//! assert_eq!(s.value_lit(Lit::pos(b)), Some(true));
//! ```

mod heap;
mod luby;
mod proof;
mod solver;
mod types;

pub use proof::ProofStep;
pub use solver::{Rephase, Solver, SolverStats};
pub use types::{Lit, SolveResult, Var};

#[cfg(test)]
mod tests;
