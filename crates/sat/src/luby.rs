//! The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, …

/// Returns the `i`-th element (1-based) of the Luby sequence.
pub(crate) fn luby(mut i: u64) -> u64 {
    // Find the finite subsequence containing index `i`, of length 2^k - 1.
    let mut k = 1u32;
    while (1u64 << k) - 1 < i {
        k += 1;
    }
    while (1u64 << k) - 1 != i {
        i -= (1u64 << (k - 1)) - 1;
        k = 1;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
    }
    1u64 << (k - 1)
}

#[cfg(test)]
mod tests {
    use super::luby;

    #[test]
    fn first_elements() {
        let want = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &w) in want.iter().enumerate() {
            assert_eq!(luby(i as u64 + 1), w, "luby({})", i + 1);
        }
    }
}
