//! Stress demo: random 3-SAT near the phase transition (ratio 4.26).
use serval_sat::{Lit, SolveResult, Solver};

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn main() {
    let mut sat = 0;
    let mut unsat = 0;
    for seed in 1..=40u64 {
        let mut rng = seed.wrapping_mul(0x9e3779b97f4a7c15);
        let n = 100usize;
        let m = 426usize;
        let mut s = Solver::new();
        let vars: Vec<_> = (0..n).map(|_| s.new_var()).collect();
        for _ in 0..m {
            let mut c = Vec::new();
            for _ in 0..3 {
                let v = vars[(xorshift(&mut rng) % n as u64) as usize];
                let neg = xorshift(&mut rng) & 1 == 1;
                c.push(Lit::new(v, neg));
            }
            s.add_clause(&c);
        }
        match s.solve() {
            SolveResult::Sat => sat += 1,
            SolveResult::Unsat => unsat += 1,
            SolveResult::Unknown | SolveResult::Interrupted => unreachable!(),
        }
    }
    println!("random 3-SAT n=100 m=426: {} sat, {} unsat", sat, unsat);
}
