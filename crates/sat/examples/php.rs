use serval_sat::{Lit, Solver, Var};
fn main() {
    let mut s = Solver::new();
    let n = 5; let m = 4;
    let p: Vec<Vec<Var>> = (0..n).map(|_| (0..m).map(|_| s.new_var()).collect()).collect();
    for row in &p {
        let c: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
        s.add_clause(&c);
    }
    for j in 0..m { for i1 in 0..n { for i2 in (i1+1)..n {
        s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
    }}}
    println!("{:?}", s.solve());
}
