//! Byte-level x86 encoding for the JIT subset (register-direct ModR/M
//! only), with decoder validation per the paper's §3.4 methodology.

use crate::{Alu, Cc, Insn, Reg, ShiftOp};

fn modrm(reg: u8, rm: Reg) -> u8 {
    0xc0 | reg << 3 | rm as u8
}

fn alu_rr_opcode(op: Alu) -> u8 {
    // "op r/m32, r32" forms.
    match op {
        Alu::Add => 0x01,
        Alu::Adc => 0x11,
        Alu::Sub => 0x29,
        Alu::Sbb => 0x19,
        Alu::And => 0x21,
        Alu::Or => 0x09,
        Alu::Xor => 0x31,
        Alu::Cmp => 0x39,
    }
}

fn alu_ext(op: Alu) -> u8 {
    // ModR/M reg-field extension for the 0x81 immediate group.
    match op {
        Alu::Add => 0,
        Alu::Or => 1,
        Alu::Adc => 2,
        Alu::Sbb => 3,
        Alu::And => 4,
        Alu::Sub => 5,
        Alu::Xor => 6,
        Alu::Cmp => 7,
    }
}

fn shift_ext(op: ShiftOp) -> u8 {
    match op {
        ShiftOp::Shl => 4,
        ShiftOp::Shr => 5,
        ShiftOp::Sar => 7,
    }
}

fn cc_code(cc: Cc) -> u8 {
    match cc {
        Cc::B => 0x2,
        Cc::Ae => 0x3,
        Cc::E => 0x4,
        Cc::Ne => 0x5,
        Cc::Be => 0x6,
        Cc::A => 0x7,
        Cc::S => 0x8,
        Cc::Ns => 0x9,
        Cc::L => 0xc,
        Cc::Ge => 0xd,
        Cc::Le => 0xe,
        Cc::G => 0xf,
    }
}

fn cc_of(code: u8) -> Option<Cc> {
    Some(match code {
        0x2 => Cc::B,
        0x3 => Cc::Ae,
        0x4 => Cc::E,
        0x5 => Cc::Ne,
        0x6 => Cc::Be,
        0x7 => Cc::A,
        0x8 => Cc::S,
        0x9 => Cc::Ns,
        0xc => Cc::L,
        0xd => Cc::Ge,
        0xe => Cc::Le,
        0xf => Cc::G,
        _ => return None,
    })
}

/// Encodes an instruction to machine bytes (rel8 jump displacements carry
/// the instruction-index delta, as documented in the crate root).
pub fn encode(i: Insn) -> Vec<u8> {
    match i {
        Insn::MovRR { dst, src } => vec![0x89, modrm(src as u8, dst)],
        Insn::MovRI { dst, imm } => {
            let mut v = vec![0xb8 + dst as u8];
            v.extend(imm.to_le_bytes());
            v
        }
        Insn::AluRR { op, dst, src } => vec![alu_rr_opcode(op), modrm(src as u8, dst)],
        Insn::AluRI { op, dst, imm } => {
            let mut v = vec![0x81, modrm(alu_ext(op), dst)];
            v.extend(imm.to_le_bytes());
            v
        }
        Insn::ShiftRI { op, dst, imm } => vec![0xc1, modrm(shift_ext(op), dst), imm],
        Insn::ShiftRCl { op, dst } => vec![0xd3, modrm(shift_ext(op), dst)],
        Insn::ShldRI { dst, src, imm } => vec![0x0f, 0xa4, modrm(src as u8, dst), imm],
        Insn::ShldRCl { dst, src } => vec![0x0f, 0xa5, modrm(src as u8, dst)],
        Insn::ShrdRI { dst, src, imm } => vec![0x0f, 0xac, modrm(src as u8, dst), imm],
        Insn::ShrdRCl { dst, src } => vec![0x0f, 0xad, modrm(src as u8, dst)],
        Insn::Neg { dst } => vec![0xf7, modrm(3, dst)],
        Insn::Not { dst } => vec![0xf7, modrm(2, dst)],
        Insn::TestRR { a, b } => vec![0x85, modrm(b as u8, a)],
        Insn::Jcc { cc, target } => vec![0x70 | cc_code(cc), target as u8],
        Insn::Jmp { target } => vec![0xeb, target as u8],
    }
}

/// Decodes the instruction at the start of `bytes`, returning it and the
/// number of bytes consumed.
pub fn decode(bytes: &[u8]) -> Result<(Insn, usize), String> {
    let b0 = *bytes.first().ok_or("empty")?;
    let rm_args = |b: u8| -> Result<(u8, Reg), String> {
        if b >> 6 != 3 {
            return Err(format!("non-register ModR/M {b:#x}"));
        }
        Ok((b >> 3 & 7, Reg::from_num(b & 7)))
    };
    let imm32 = |off: usize| -> Result<u32, String> {
        let sl: [u8; 4] = bytes
            .get(off..off + 4)
            .ok_or("truncated imm32")?
            .try_into()
            .unwrap();
        Ok(u32::from_le_bytes(sl))
    };
    match b0 {
        0x89 => {
            let (reg, rm) = rm_args(bytes[1])?;
            Ok((
                Insn::MovRR {
                    dst: rm,
                    src: Reg::from_num(reg),
                },
                2,
            ))
        }
        0xb8..=0xbf => Ok((
            Insn::MovRI {
                dst: Reg::from_num(b0 - 0xb8),
                imm: imm32(1)?,
            },
            5,
        )),
        0x01 | 0x11 | 0x29 | 0x19 | 0x21 | 0x09 | 0x31 | 0x39 => {
            let op = match b0 {
                0x01 => Alu::Add,
                0x11 => Alu::Adc,
                0x29 => Alu::Sub,
                0x19 => Alu::Sbb,
                0x21 => Alu::And,
                0x09 => Alu::Or,
                0x31 => Alu::Xor,
                _ => Alu::Cmp,
            };
            let (reg, rm) = rm_args(bytes[1])?;
            Ok((
                Insn::AluRR {
                    op,
                    dst: rm,
                    src: Reg::from_num(reg),
                },
                2,
            ))
        }
        0x81 => {
            let (ext, rm) = rm_args(bytes[1])?;
            let op = match ext {
                0 => Alu::Add,
                1 => Alu::Or,
                2 => Alu::Adc,
                3 => Alu::Sbb,
                4 => Alu::And,
                5 => Alu::Sub,
                6 => Alu::Xor,
                7 => Alu::Cmp,
                _ => unreachable!(),
            };
            Ok((
                Insn::AluRI {
                    op,
                    dst: rm,
                    imm: imm32(2)?,
                },
                6,
            ))
        }
        0xc1 => {
            let (ext, rm) = rm_args(bytes[1])?;
            let op = match ext {
                4 => ShiftOp::Shl,
                5 => ShiftOp::Shr,
                7 => ShiftOp::Sar,
                e => return Err(format!("bad shift ext {e}")),
            };
            Ok((
                Insn::ShiftRI {
                    op,
                    dst: rm,
                    imm: bytes[2],
                },
                3,
            ))
        }
        0xd3 => {
            let (ext, rm) = rm_args(bytes[1])?;
            let op = match ext {
                4 => ShiftOp::Shl,
                5 => ShiftOp::Shr,
                7 => ShiftOp::Sar,
                e => return Err(format!("bad shift ext {e}")),
            };
            Ok((Insn::ShiftRCl { op, dst: rm }, 2))
        }
        0xf7 => {
            let (ext, rm) = rm_args(bytes[1])?;
            match ext {
                3 => Ok((Insn::Neg { dst: rm }, 2)),
                2 => Ok((Insn::Not { dst: rm }, 2)),
                e => Err(format!("bad group-3 ext {e}")),
            }
        }
        0x85 => {
            let (reg, rm) = rm_args(bytes[1])?;
            Ok((
                Insn::TestRR {
                    a: rm,
                    b: Reg::from_num(reg),
                },
                2,
            ))
        }
        0x70..=0x7f => {
            let cc = cc_of(b0 & 0xf).ok_or(format!("unsupported cc {:#x}", b0 & 0xf))?;
            Ok((
                Insn::Jcc {
                    cc,
                    target: bytes[1] as i8,
                },
                2,
            ))
        }
        0xeb => Ok((
            Insn::Jmp {
                target: bytes[1] as i8,
            },
            2,
        )),
        0x0f => {
            let b1 = *bytes.get(1).ok_or("truncated 0f")?;
            let (reg, rm) = rm_args(bytes[2])?;
            let src = Reg::from_num(reg);
            match b1 {
                0xa4 => Ok((Insn::ShldRI { dst: rm, src, imm: bytes[3] }, 4)),
                0xa5 => Ok((Insn::ShldRCl { dst: rm, src }, 3)),
                0xac => Ok((Insn::ShrdRI { dst: rm, src, imm: bytes[3] }, 4)),
                0xad => Ok((Insn::ShrdRCl { dst: rm, src }, 3)),
                _ => Err(format!("unknown 0f opcode {b1:#x}")),
            }
        }
        _ => Err(format!("unknown opcode {b0:#x}")),
    }
}

/// Decodes with re-encoding validation (paper §3.4).
pub fn decode_validated(bytes: &[u8]) -> Result<(Insn, usize), String> {
    let (i, n) = decode(bytes)?;
    let back = encode(i);
    if back != bytes[..n] {
        return Err(format!("decode/encode mismatch for {i:?}"));
    }
    Ok((i, n))
}
