//! The x86-32 interpreter under symbolic evaluation.

use crate::{Alu, Cc, Insn, ShiftOp, X86State};
use serval_core::{split_pc, BugOn};
use serval_smt::{SBool, BV};
use serval_sym::SymCtx;

/// The lifted x86-32 interpreter.
pub struct X86Interp {
    /// The program (e.g. a JIT-emitted sequence).
    pub program: Vec<Insn>,
    /// Maximum instructions per path.
    pub fuel: usize,
}

impl X86Interp {
    /// An interpreter for `program`.
    pub fn new(program: Vec<Insn>) -> X86Interp {
        X86Interp {
            program,
            fuel: 1024,
        }
    }

    /// Runs until the pc falls off the end of the program (the JIT
    /// checker's convention for "sequence complete"). Returns false if
    /// evaluation diverged.
    pub fn run(&self, ctx: &mut SymCtx, s: &mut X86State) -> bool {
        self.step(ctx, s, self.fuel)
    }

    fn step(&self, ctx: &mut SymCtx, s: &mut X86State, fuel: usize) -> bool {
        if fuel == 0 {
            return false;
        }
        let n = self.program.len() as u128;
        ctx.bug_on(s.pc.ugt(BV::lit(64, n)), "x86 pc out of bounds");
        let pc = s.pc;
        let r = split_pc(ctx, s, pc, |ctx, s, v| {
            if v >= n {
                return true; // fell off the end: sequence complete
            }
            let insn = self.program[v as usize];
            s.pc = BV::lit(64, v);
            self.execute(ctx, s, insn);
            self.step(ctx, s, fuel - 1)
        });
        r.unwrap_or(false)
    }

    /// Executes one instruction at a concrete pc.
    pub fn execute(&self, ctx: &mut SymCtx, s: &mut X86State, insn: Insn) {
        let _ = ctx;
        let next = s.pc + BV::lit(64, 1);
        match insn {
            Insn::MovRR { dst, src } => {
                s.set_reg(dst, s.reg(src));
                s.pc = next;
            }
            Insn::MovRI { dst, imm } => {
                s.set_reg(dst, BV::lit(32, imm as u128));
                s.pc = next;
            }
            Insn::AluRR { op, dst, src } => {
                let b = s.reg(src);
                self.alu(s, op, dst, b);
                s.pc = next;
            }
            Insn::AluRI { op, dst, imm } => {
                self.alu(s, op, dst, BV::lit(32, imm as u128));
                s.pc = next;
            }
            Insn::ShiftRI { op, dst, imm } => {
                self.shift(s, op, dst, BV::lit(32, (imm & 0x1f) as u128));
                s.pc = next;
            }
            Insn::ShiftRCl { op, dst } => {
                let amt = s.reg(crate::Reg::Ecx) & BV::lit(32, 0x1f);
                self.shift(s, op, dst, amt);
                s.pc = next;
            }
            Insn::ShldRI { dst, src, imm } => {
                self.double_shift(s, dst, src, BV::lit(32, (imm & 0x1f) as u128), true);
                s.pc = next;
            }
            Insn::ShldRCl { dst, src } => {
                let amt = s.reg(crate::Reg::Ecx) & BV::lit(32, 0x1f);
                self.double_shift(s, dst, src, amt, true);
                s.pc = next;
            }
            Insn::ShrdRI { dst, src, imm } => {
                self.double_shift(s, dst, src, BV::lit(32, (imm & 0x1f) as u128), false);
                s.pc = next;
            }
            Insn::ShrdRCl { dst, src } => {
                let amt = s.reg(crate::Reg::Ecx) & BV::lit(32, 0x1f);
                self.double_shift(s, dst, src, amt, false);
                s.pc = next;
            }
            Insn::Neg { dst } => {
                let a = s.reg(dst);
                let r = BV::lit(32, 0) - a;
                s.cf = a.ne_(BV::lit(32, 0));
                s.zf = r.is_zero();
                s.sf = r.slt(BV::lit(32, 0));
                s.of = a.eq_(BV::lit(32, 0x8000_0000));
                s.set_reg(dst, r);
                s.pc = next;
            }
            Insn::Not { dst } => {
                s.set_reg(dst, !s.reg(dst));
                s.pc = next;
            }
            Insn::TestRR { a, b } => {
                let r = s.reg(a) & s.reg(b);
                s.cf = SBool::lit(false);
                s.of = SBool::lit(false);
                s.zf = r.is_zero();
                s.sf = r.slt(BV::lit(32, 0));
                s.pc = next;
            }
            Insn::Jcc { cc, target } => {
                let taken = cond(s, cc);
                let t = s.pc + BV::lit(64, (1 + target as i64) as u64 as u128);
                s.pc = taken.select(t, next);
            }
            Insn::Jmp { target } => {
                s.pc = s.pc + BV::lit(64, (1 + target as i64) as u64 as u128);
            }
        }
    }

    fn alu(&self, s: &mut X86State, op: Alu, dst: crate::Reg, b: BV) {
        let a = s.reg(dst);
        let zero = BV::lit(32, 0);
        match op {
            Alu::Add | Alu::Adc => {
                let cin = if op == Alu::Adc {
                    s.cf.select(BV::lit(32, 1), zero)
                } else {
                    zero
                };
                let wide = a.zext(33) + b.zext(33) + cin.zext(33);
                let r = wide.trunc(32);
                s.cf = wide.extract(32, 32).eq_(BV::lit(1, 1));
                // Signed overflow: operands same sign, result differs.
                s.of = (a.slt(zero).iff(b.slt(zero))) & !(a.slt(zero).iff(r.slt(zero)));
                s.zf = r.is_zero();
                s.sf = r.slt(zero);
                s.set_reg(dst, r);
            }
            Alu::Sub | Alu::Sbb | Alu::Cmp => {
                let bin = if op == Alu::Sbb {
                    s.cf.select(BV::lit(32, 1), zero)
                } else {
                    zero
                };
                let wide = a.zext(33) - b.zext(33) - bin.zext(33);
                let r = wide.trunc(32);
                s.cf = wide.extract(32, 32).eq_(BV::lit(1, 1)); // borrow
                s.of = !(a.slt(zero).iff(b.slt(zero))) & !(a.slt(zero).iff(r.slt(zero)));
                s.zf = r.is_zero();
                s.sf = r.slt(zero);
                if op != Alu::Cmp {
                    s.set_reg(dst, r);
                }
            }
            Alu::And | Alu::Or | Alu::Xor => {
                let r = match op {
                    Alu::And => a & b,
                    Alu::Or => a | b,
                    _ => a ^ b,
                };
                s.cf = SBool::lit(false);
                s.of = SBool::lit(false);
                s.zf = r.is_zero();
                s.sf = r.slt(zero);
                s.set_reg(dst, r);
            }
        }
    }

    /// Shift semantics. Flags: the JIT sequences only consume flags set by
    /// explicit `cmp`/`test`, so shifts here update ZF/SF and leave CF/OF
    /// unchanged for zero amounts (matching hardware) and approximate CF
    /// otherwise; this is documented in DESIGN.md.
    fn shift(&self, s: &mut X86State, op: ShiftOp, dst: crate::Reg, amt: BV) {
        let a = s.reg(dst);
        let r = match op {
            ShiftOp::Shl => a.shl(amt),
            ShiftOp::Shr => a.lshr(amt),
            ShiftOp::Sar => a.ashr(amt),
        };
        let zero_amt = amt.is_zero();
        s.zf = zero_amt.ite(s.zf, r.is_zero());
        s.sf = zero_amt.ite(s.sf, r.slt(BV::lit(32, 0)));
        s.set_reg(dst, zero_amt.select(a, r));
    }
}

impl X86Interp {
    /// `shld`/`shrd`: 64-bit double shift through a register pair. The
    /// count is pre-masked to 5 bits; a zero count leaves state unchanged.
    fn double_shift(&self, s: &mut X86State, dst: crate::Reg, src: crate::Reg, amt: BV, left: bool) {
        let d = s.reg(dst);
        let x = s.reg(src);
        let inv = BV::lit(32, 32) - amt;
        let r = if left {
            d.shl(amt) | x.lshr(inv)
        } else {
            d.lshr(amt) | x.shl(inv)
        };
        let zero_amt = amt.is_zero();
        s.zf = zero_amt.ite(s.zf, r.is_zero());
        s.sf = zero_amt.ite(s.sf, r.slt(BV::lit(32, 0)));
        s.set_reg(dst, zero_amt.select(d, r));
    }
}

fn cond(s: &X86State, cc: Cc) -> SBool {
    match cc {
        Cc::E => s.zf,
        Cc::Ne => !s.zf,
        Cc::B => s.cf,
        Cc::Ae => !s.cf,
        Cc::A => !s.cf & !s.zf,
        Cc::Be => s.cf | s.zf,
        Cc::L => s.sf ^ s.of,
        Cc::Ge => !(s.sf ^ s.of),
        Cc::G => !s.zf & !(s.sf ^ s.of),
        Cc::Le => s.zf | (s.sf ^ s.of),
        Cc::S => s.sf,
        Cc::Ns => !s.sf,
    }
}
