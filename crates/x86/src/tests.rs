//! x86-32 verifier tests.

use crate::*;
use serval_check::prelude::*;
use serval_smt::{reset_ctx, verify, BV};
use serval_sym::SymCtx;

fn arb_reg() -> impl Strategy<Value = Reg> {
    prop::sample::select(Reg::ALL.to_vec())
}

fn arb_insn() -> impl Strategy<Value = Insn> {
    let alu = prop::sample::select(vec![
        Alu::Add,
        Alu::Adc,
        Alu::Sub,
        Alu::Sbb,
        Alu::And,
        Alu::Or,
        Alu::Xor,
        Alu::Cmp,
    ]);
    let sh = prop::sample::select(vec![ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar]);
    let cc = prop::sample::select(vec![
        Cc::E,
        Cc::Ne,
        Cc::B,
        Cc::Ae,
        Cc::A,
        Cc::Be,
        Cc::L,
        Cc::Ge,
        Cc::G,
        Cc::Le,
        Cc::S,
        Cc::Ns,
    ]);
    prop_oneof![
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Insn::MovRR { dst, src }),
        (arb_reg(), any::<u32>()).prop_map(|(dst, imm)| Insn::MovRI { dst, imm }),
        (alu.clone(), arb_reg(), arb_reg()).prop_map(|(op, dst, src)| Insn::AluRR { op, dst, src }),
        (alu, arb_reg(), any::<u32>()).prop_map(|(op, dst, imm)| Insn::AluRI { op, dst, imm }),
        (sh.clone(), arb_reg(), 0u8..32).prop_map(|(op, dst, imm)| Insn::ShiftRI { op, dst, imm }),
        (sh, arb_reg()).prop_map(|(op, dst)| Insn::ShiftRCl { op, dst }),
        arb_reg().prop_map(|dst| Insn::Neg { dst }),
        arb_reg().prop_map(|dst| Insn::Not { dst }),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Insn::TestRR { a, b }),
        (arb_reg(), arb_reg(), 0u8..32).prop_map(|(dst, src, imm)| Insn::ShldRI { dst, src, imm }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Insn::ShldRCl { dst, src }),
        (arb_reg(), arb_reg(), 0u8..32).prop_map(|(dst, src, imm)| Insn::ShrdRI { dst, src, imm }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Insn::ShrdRCl { dst, src }),
        (cc, any::<i8>()).prop_map(|(cc, target)| Insn::Jcc { cc, target }),
        any::<i8>().prop_map(|target| Insn::Jmp { target }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_roundtrip(insn in arb_insn()) {
        let bytes = encode(insn);
        let (back, n) = decode_validated(&bytes).expect("decode");
        prop_assert_eq!(back, insn);
        prop_assert_eq!(n, bytes.len());
    }
}

fn run_concrete(program: Vec<Insn>, init: &[(Reg, u32)]) -> X86State {
    let mut ctx = SymCtx::new();
    let interp = X86Interp::new(program);
    let mut s = X86State::fresh("s");
    for &(r, v) in init {
        s.set_reg(r, BV::lit(32, v as u128));
    }
    assert!(interp.run(&mut ctx, &mut s), "diverged");
    s
}

#[test]
fn add_with_carry_chain() {
    reset_ctx();
    // 64-bit add via add/adc pairs: (eax:edx) += (ebx:ecx).
    let s = run_concrete(
        vec![
            Insn::AluRR { op: Alu::Add, dst: Reg::Eax, src: Reg::Ebx },
            Insn::AluRR { op: Alu::Adc, dst: Reg::Edx, src: Reg::Ecx },
        ],
        &[
            (Reg::Eax, 0xffff_ffff),
            (Reg::Edx, 0x1),
            (Reg::Ebx, 0x1),
            (Reg::Ecx, 0x0),
        ],
    );
    // 0x1_ffffffff + 1 = 0x2_00000000.
    assert_eq!(s.reg(Reg::Eax).as_const(), Some(0));
    assert_eq!(s.reg(Reg::Edx).as_const(), Some(2));
}

#[test]
fn sub_with_borrow_chain() {
    reset_ctx();
    let s = run_concrete(
        vec![
            Insn::AluRR { op: Alu::Sub, dst: Reg::Eax, src: Reg::Ebx },
            Insn::AluRR { op: Alu::Sbb, dst: Reg::Edx, src: Reg::Ecx },
        ],
        &[
            (Reg::Eax, 0x0),
            (Reg::Edx, 0x2),
            (Reg::Ebx, 0x1),
            (Reg::Ecx, 0x0),
        ],
    );
    // 0x2_00000000 - 1 = 0x1_ffffffff.
    assert_eq!(s.reg(Reg::Eax).as_const(), Some(0xffff_ffff));
    assert_eq!(s.reg(Reg::Edx).as_const(), Some(1));
}

#[test]
fn conditional_jump_symbolic() {
    reset_ctx();
    // if (eax == 0) ebx = 1; else ebx = 2;
    let prog = vec![
        Insn::AluRI { op: Alu::Cmp, dst: Reg::Eax, imm: 0 },
        Insn::Jcc { cc: Cc::E, target: 2 },
        Insn::MovRI { dst: Reg::Ebx, imm: 2 },
        Insn::Jmp { target: 1 },
        Insn::MovRI { dst: Reg::Ebx, imm: 1 },
    ];
    let mut ctx = SymCtx::new();
    let interp = X86Interp::new(prog);
    let mut s = X86State::fresh("s");
    let eax = s.reg(Reg::Eax);
    assert!(interp.run(&mut ctx, &mut s));
    let expect = eax.is_zero().select(BV::lit(32, 1), BV::lit(32, 2));
    assert!(verify(&[], s.reg(Reg::Ebx).eq_(expect)).is_proved());
}

#[test]
fn signed_compare_flags() {
    reset_ctx();
    // ecx = 1 if eax < ebx (signed) else 0.
    let prog = vec![
        Insn::MovRI { dst: Reg::Ecx, imm: 0 },
        Insn::AluRR { op: Alu::Cmp, dst: Reg::Eax, src: Reg::Ebx },
        Insn::Jcc { cc: Cc::Ge, target: 1 },
        Insn::MovRI { dst: Reg::Ecx, imm: 1 },
    ];
    let mut ctx = SymCtx::new();
    let interp = X86Interp::new(prog);
    let mut s = X86State::fresh("s");
    let (a, b) = (s.reg(Reg::Eax), s.reg(Reg::Ebx));
    assert!(interp.run(&mut ctx, &mut s));
    let expect = a.slt(b).select(BV::lit(32, 1), BV::lit(32, 0));
    assert!(verify(&[], s.reg(Reg::Ecx).eq_(expect)).is_proved());
}

#[test]
fn unsigned_compare_flags() {
    reset_ctx();
    let prog = vec![
        Insn::MovRI { dst: Reg::Ecx, imm: 0 },
        Insn::AluRR { op: Alu::Cmp, dst: Reg::Eax, src: Reg::Ebx },
        Insn::Jcc { cc: Cc::Ae, target: 1 },
        Insn::MovRI { dst: Reg::Ecx, imm: 1 },
    ];
    let mut ctx = SymCtx::new();
    let interp = X86Interp::new(prog);
    let mut s = X86State::fresh("s");
    let (a, b) = (s.reg(Reg::Eax), s.reg(Reg::Ebx));
    assert!(interp.run(&mut ctx, &mut s));
    let expect = a.ult(b).select(BV::lit(32, 1), BV::lit(32, 0));
    assert!(verify(&[], s.reg(Reg::Ecx).eq_(expect)).is_proved());
}

#[test]
fn shifts_match_reference() {
    for (op, a, amt, expect) in [
        (ShiftOp::Shl, 0x8000_0001u32, 1u8, 0x2u32),
        (ShiftOp::Shr, 0x8000_0000, 31, 1),
        (ShiftOp::Sar, 0x8000_0000, 31, 0xffff_ffff),
        (ShiftOp::Shl, 0x1234_5678, 0, 0x1234_5678),
    ] {
        reset_ctx();
        let s = run_concrete(
            vec![Insn::ShiftRI { op, dst: Reg::Eax, imm: amt }],
            &[(Reg::Eax, a)],
        );
        assert_eq!(s.reg(Reg::Eax).as_const(), Some(expect as u128), "{op:?}");
    }
}


#[test]
fn shld_shrd_semantics() {
    reset_ctx();
    // shld eax, ebx, 8: eax = (eax << 8) | (ebx >> 24).
    let s = run_concrete(
        vec![Insn::ShldRI { dst: Reg::Eax, src: Reg::Ebx, imm: 8 }],
        &[(Reg::Eax, 0x11223344), (Reg::Ebx, 0xaabbccdd)],
    );
    assert_eq!(s.reg(Reg::Eax).as_const(), Some(0x223344aa));
    reset_ctx();
    let s = run_concrete(
        vec![Insn::ShrdRI { dst: Reg::Eax, src: Reg::Ebx, imm: 8 }],
        &[(Reg::Eax, 0x11223344), (Reg::Ebx, 0xaabbccdd)],
    );
    assert_eq!(s.reg(Reg::Eax).as_const(), Some(0xdd112233));
    // Count of zero leaves the register unchanged.
    reset_ctx();
    let s = run_concrete(
        vec![Insn::ShldRI { dst: Reg::Eax, src: Reg::Ebx, imm: 0 }],
        &[(Reg::Eax, 0x11223344), (Reg::Ebx, 0xaabbccdd)],
    );
    assert_eq!(s.reg(Reg::Eax).as_const(), Some(0x11223344));
}
