//! The x86-32 verifier (paper §5): general-purpose registers and the
//! instruction subset used by the Linux kernel's BPF JIT for x86-32.
//!
//! As in the paper, only the general-purpose register state (plus the
//! arithmetic EFLAGS bits the JIT's compare-and-branch sequences depend
//! on) is modelled. Instructions carry their x86 machine encoding via
//! [`encode`]/[`decode`], validated against each other (§3.4); jump
//! targets are modelled as instruction-index deltas.

use serval_smt::{SBool, BV};
use serval_sym::Merge;

pub mod encoding;
pub mod interp;

pub use encoding::{decode, decode_validated, encode};
pub use interp::X86Interp;

/// General-purpose 32-bit registers, numbered as in ModR/M.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Reg {
    Eax = 0,
    Ecx = 1,
    Edx = 2,
    Ebx = 3,
    Esp = 4,
    Ebp = 5,
    Esi = 6,
    Edi = 7,
}

impl Reg {
    /// All registers in encoding order.
    pub const ALL: [Reg; 8] = [
        Reg::Eax,
        Reg::Ecx,
        Reg::Edx,
        Reg::Ebx,
        Reg::Esp,
        Reg::Ebp,
        Reg::Esi,
        Reg::Edi,
    ];

    /// Register from its ModR/M number.
    pub fn from_num(n: u8) -> Reg {
        Self::ALL[n as usize]
    }
}

/// Flag-setting ALU operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Alu {
    Add,
    Adc,
    Sub,
    Sbb,
    And,
    Or,
    Xor,
    Cmp,
}

/// Shift operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShiftOp {
    Shl,
    Shr,
    Sar,
}

/// Condition codes for `jcc`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cc {
    /// ZF.
    E,
    /// !ZF.
    Ne,
    /// CF (unsigned below).
    B,
    /// !CF.
    Ae,
    /// !CF && !ZF.
    A,
    /// CF || ZF.
    Be,
    /// SF != OF (signed less).
    L,
    /// SF == OF.
    Ge,
    /// !ZF && SF == OF.
    G,
    /// ZF || SF != OF.
    Le,
    /// SF.
    S,
    /// !SF.
    Ns,
}

/// An x86-32 instruction from the BPF-JIT subset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Insn {
    /// `mov dst, src`.
    MovRR { dst: Reg, src: Reg },
    /// `mov dst, imm32`.
    MovRI { dst: Reg, imm: u32 },
    /// `op dst, src` (flag-setting).
    AluRR { op: Alu, dst: Reg, src: Reg },
    /// `op dst, imm32`.
    AluRI { op: Alu, dst: Reg, imm: u32 },
    /// `shift dst, imm8`.
    ShiftRI { op: ShiftOp, dst: Reg, imm: u8 },
    /// `shift dst, cl`.
    ShiftRCl { op: ShiftOp, dst: Reg },
    /// `shld dst, src, imm8`: shift dst left, filling from src's top bits.
    ShldRI { dst: Reg, src: Reg, imm: u8 },
    /// `shld dst, src, cl`.
    ShldRCl { dst: Reg, src: Reg },
    /// `shrd dst, src, imm8`: shift dst right, filling from src's low bits.
    ShrdRI { dst: Reg, src: Reg, imm: u8 },
    /// `shrd dst, src, cl`.
    ShrdRCl { dst: Reg, src: Reg },
    /// `neg dst`.
    Neg { dst: Reg },
    /// `not dst` (does not affect flags).
    Not { dst: Reg },
    /// `test a, b` (flags only).
    TestRR { a: Reg, b: Reg },
    /// Conditional jump; `target` is an instruction-index delta from the
    /// *next* instruction.
    Jcc { cc: Cc, target: i8 },
    /// Unconditional jump (same target convention).
    Jmp { target: i8 },
}

/// Machine state: eight 32-bit registers, arithmetic flags, and an
/// instruction index.
#[derive(Clone, Debug)]
pub struct X86State {
    /// Registers, indexed by ModR/M number.
    pub regs: Vec<BV>,
    /// Carry flag.
    pub cf: SBool,
    /// Zero flag.
    pub zf: SBool,
    /// Sign flag.
    pub sf: SBool,
    /// Overflow flag.
    pub of: SBool,
    /// Instruction index.
    pub pc: BV,
}

impl X86State {
    /// Fully symbolic registers, flags cleared, pc at 0.
    pub fn fresh(tag: &str) -> X86State {
        X86State {
            regs: (0..8)
                .map(|i| BV::fresh(32, &format!("{tag}.r{i}")))
                .collect(),
            cf: SBool::lit(false),
            zf: SBool::lit(false),
            sf: SBool::lit(false),
            of: SBool::lit(false),
            pc: BV::lit(64, 0),
        }
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> BV {
        self.regs[r as usize]
    }

    /// Writes a register.
    pub fn set_reg(&mut self, r: Reg, v: BV) {
        debug_assert_eq!(v.width(), 32);
        self.regs[r as usize] = v;
    }
}

impl Merge for X86State {
    fn merge(c: SBool, t: &Self, e: &Self) -> Self {
        X86State {
            regs: Vec::merge(c, &t.regs, &e.regs),
            cf: SBool::merge(c, &t.cf, &e.cf),
            zf: SBool::merge(c, &t.zf, &e.zf),
            sf: SBool::merge(c, &t.sf, &e.sf),
            of: SBool::merge(c, &t.of, &e.of),
            pc: BV::merge(c, &t.pc, &e.pc),
        }
    }
}

#[cfg(test)]
mod tests;
