//! Hash-consed term DAG and the thread-local term context.
//!
//! Every term lives in a per-thread [`Ctx`]; [`TermId`] is an index into it.
//! Hash-consing guarantees structural sharing: building the same term twice
//! yields the same id, which keeps symbolic evaluation of straight-line
//! machine code polynomial in practice and makes equality checks O(1).

use std::cell::RefCell;
use std::collections::HashMap;

/// The sort of a term: boolean or a fixed-width bitvector.
///
/// Widths from 1 to 128 bits are supported; 128 covers double-width
/// multiplication results used by the RISC-V `mulh` family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sort {
    /// Boolean sort.
    Bool,
    /// Bitvector sort of the given width in bits (1..=128).
    BitVec(u32),
}

impl Sort {
    /// The width of a bitvector sort.
    ///
    /// # Panics
    ///
    /// Panics if the sort is `Bool`.
    pub fn width(self) -> u32 {
        match self {
            Sort::BitVec(w) => w,
            Sort::Bool => panic!("Bool sort has no width"),
        }
    }
}

/// Identifier of a hash-consed term within the thread's context.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

/// Identifier of an uninterpreted function within the thread's context.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct UfId(pub u32);

/// Term operators. Children are stored separately in [`Term::children`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    // Leaves.
    /// Boolean constant.
    BoolConst(bool),
    /// Bitvector constant; `value` is truncated to the sort width.
    BvConst(u128),
    /// A free symbolic constant ("unknown input"). The `u32` is a unique
    /// ordinal; the name is kept in the context for diagnostics.
    Var(u32),

    // Boolean connectives (children: Bool).
    Not,
    And,
    Or,
    Xor,
    Iff,
    /// if-then-else on booleans: children `[cond, then, else]`.
    IteBool,

    // Predicates (children: BitVec, result: Bool).
    /// Bitvector equality.
    Eq,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,

    // Bitvector operations (children and result: BitVec).
    BvNot,
    BvNeg,
    BvAnd,
    BvOr,
    BvXor,
    BvAdd,
    BvSub,
    BvMul,
    /// Unsigned division; division by zero yields all-ones (SMT-LIB).
    BvUdiv,
    /// Unsigned remainder; remainder by zero yields the dividend.
    BvUrem,
    /// Logical shift left; shift amounts >= width yield zero.
    BvShl,
    /// Logical shift right; shift amounts >= width yield zero.
    BvLshr,
    /// Arithmetic shift right; shift amounts >= width replicate the sign.
    BvAshr,
    /// Concatenation: children `[hi, lo]`; result width is the sum.
    Concat,
    /// Bit extraction `[hi:lo]` (inclusive).
    Extract(u32, u32),
    /// Zero extension to the result width.
    ZeroExt,
    /// Sign extension to the result width.
    SignExt,
    /// if-then-else on bitvectors: children `[cond, then, else]`.
    IteBv,
    /// Application of an uninterpreted function to bitvector arguments.
    UfApply(UfId),
}

/// A term node: operator, children, and sort.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Term {
    /// The operator at this node.
    pub op: Op,
    /// Child term ids, in operator-specific order.
    pub children: Vec<TermId>,
    /// The node's sort.
    pub sort: Sort,
}

/// Signature of an uninterpreted function: argument widths and result width.
#[derive(Clone, Debug)]
pub struct UfSig {
    /// Diagnostic name.
    pub name: String,
    /// Widths of the (bitvector) arguments.
    pub args: Vec<u32>,
    /// Width of the (bitvector) result.
    pub result: u32,
}

/// The per-thread term store.
#[derive(Default)]
pub struct Ctx {
    terms: Vec<Term>,
    intern: HashMap<Term, TermId>,
    var_names: Vec<String>,
    ufs: Vec<UfSig>,
}

impl Ctx {
    /// Interns `t`, returning the id of the canonical copy.
    pub fn intern(&mut self, t: Term) -> TermId {
        if let Some(&id) = self.intern.get(&t) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(t.clone());
        self.intern.insert(t, id);
        id
    }

    /// The term node for `id`.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.0 as usize]
    }

    /// The sort of `id`.
    pub fn sort(&self, id: TermId) -> Sort {
        self.terms[id.0 as usize].sort
    }

    /// Allocates a fresh symbolic constant of the given sort.
    pub fn fresh_var(&mut self, sort: Sort, name: &str) -> TermId {
        let ordinal = self.var_names.len() as u32;
        self.var_names.push(format!("{name}#{ordinal}"));
        // Vars are unique by ordinal, so interning always allocates.
        self.intern(Term {
            op: Op::Var(ordinal),
            children: Vec::new(),
            sort,
        })
    }

    /// The diagnostic name of variable ordinal `v`.
    pub fn var_name(&self, v: u32) -> &str {
        &self.var_names[v as usize]
    }

    /// Declares an uninterpreted function.
    pub fn declare_uf(&mut self, name: &str, args: Vec<u32>, result: u32) -> UfId {
        let id = UfId(self.ufs.len() as u32);
        self.ufs.push(UfSig {
            name: name.to_string(),
            args,
            result,
        });
        id
    }

    /// The signature of `uf`.
    pub fn uf_sig(&self, uf: UfId) -> &UfSig {
        &self.ufs[uf.0 as usize]
    }

    /// Number of interned terms (used by the symbolic profiler).
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }
}

thread_local! {
    static CTX: RefCell<Ctx> = RefCell::new(Ctx::default());
}

/// Runs `f` with mutable access to the thread's term context.
pub fn with_ctx<R>(f: impl FnOnce(&mut Ctx) -> R) -> R {
    CTX.with(|c| f(&mut c.borrow_mut()))
}

/// Clears the thread's term context.
///
/// Term ids issued before the reset become dangling; callers (benchmarks,
/// independent verification queries) must not reuse them.
pub fn reset_ctx() {
    CTX.with(|c| *c.borrow_mut() = Ctx::default());
}

/// Truncates `v` to `w` bits.
#[inline]
pub fn mask(w: u32, v: u128) -> u128 {
    if w >= 128 {
        v
    } else {
        v & ((1u128 << w) - 1)
    }
}

/// Sign-extends the `w`-bit value `v` to an `i128`.
#[inline]
pub fn to_signed(w: u32, v: u128) -> i128 {
    let v = mask(w, v);
    if w < 128 && v >> (w - 1) & 1 == 1 {
        // Two's-complement reinterpretation, computed in u128 to avoid
        // signed overflow at w = 127.
        v.wrapping_sub(1u128 << w) as i128
    } else {
        v as i128
    }
}
