//! Smart constructors with simplification.
//!
//! Every constructor folds constants and applies local rewrite rules before
//! interning, mirroring Rosette's partial evaluation: symbolic evaluation of
//! machine code with concrete operands stays entirely concrete, and the
//! residual terms handed to the bit-blaster are small and canonical.
//!
//! Canonical forms maintained here (relied on by `serval-core`'s symbolic
//! optimizations, which pattern-match term structure):
//!
//! - constants appear as the *right* child of commutative operators;
//! - chained additions of constants are gathered: `(x + c1) + c2 → x + c`;
//! - subtraction of a constant is an addition: `x - c → x + (-c)`;
//! - `ite` conditions are never negations: `ite(!c, t, e) → ite(c, e, t)`.

use crate::semantics;
use crate::term::{mask, with_ctx, Op, Sort, Term, TermId, UfId};

fn intern(op: Op, children: Vec<TermId>, sort: Sort) -> TermId {
    with_ctx(|c| {
        c.intern(Term {
            op,
            children,
            sort,
        })
    })
}

/// The sort of `t`.
pub fn sort_of(t: TermId) -> Sort {
    with_ctx(|c| c.sort(t))
}

/// The width of bitvector term `t`.
pub fn width_of(t: TermId) -> u32 {
    sort_of(t).width()
}

/// The constant value of `t`, if `t` is a bitvector constant.
pub fn as_bv_const(t: TermId) -> Option<u128> {
    with_ctx(|c| match c.term(t).op {
        Op::BvConst(v) => Some(v),
        _ => None,
    })
}

/// The constant value of `t`, if `t` is a boolean constant.
pub fn as_bool_const(t: TermId) -> Option<bool> {
    with_ctx(|c| match c.term(t).op {
        Op::BoolConst(b) => Some(b),
        _ => None,
    })
}

/// Decomposes `t` as `ite(cond, then, else)` over either sort.
pub fn as_ite(t: TermId) -> Option<(TermId, TermId, TermId)> {
    with_ctx(|c| {
        let n = c.term(t);
        match n.op {
            Op::IteBv | Op::IteBool => Some((n.children[0], n.children[1], n.children[2])),
            _ => None,
        }
    })
}

/// Decomposes `t` as `a + b`.
pub fn as_add(t: TermId) -> Option<(TermId, TermId)> {
    with_ctx(|c| {
        let n = c.term(t);
        match n.op {
            Op::BvAdd => Some((n.children[0], n.children[1])),
            _ => None,
        }
    })
}

/// Decomposes `t` as `a * b`.
pub fn as_mul(t: TermId) -> Option<(TermId, TermId)> {
    with_ctx(|c| {
        let n = c.term(t);
        match n.op {
            Op::BvMul => Some((n.children[0], n.children[1])),
            _ => None,
        }
    })
}

/// Decomposes `t` as `a urem b`.
pub fn as_urem(t: TermId) -> Option<(TermId, TermId)> {
    with_ctx(|c| {
        let n = c.term(t);
        match n.op {
            Op::BvUrem => Some((n.children[0], n.children[1])),
            _ => None,
        }
    })
}

// ---------------------------------------------------------------------
// Leaves
// ---------------------------------------------------------------------

/// Boolean constant term.
pub fn bool_const(b: bool) -> TermId {
    intern(Op::BoolConst(b), vec![], Sort::Bool)
}

/// Bitvector constant term of width `w`.
pub fn bv_const(w: u32, v: u128) -> TermId {
    assert!((1..=128).contains(&w), "unsupported width {w}");
    intern(Op::BvConst(mask(w, v)), vec![], Sort::BitVec(w))
}

/// Fresh symbolic boolean.
pub fn fresh_bool(name: &str) -> TermId {
    with_ctx(|c| c.fresh_var(Sort::Bool, name))
}

/// Fresh symbolic bitvector of width `w`.
pub fn fresh_bv(w: u32, name: &str) -> TermId {
    assert!((1..=128).contains(&w), "unsupported width {w}");
    with_ctx(|c| c.fresh_var(Sort::BitVec(w), name))
}

// ---------------------------------------------------------------------
// Boolean connectives
// ---------------------------------------------------------------------

/// Logical negation.
pub fn not(a: TermId) -> TermId {
    if let Some(b) = as_bool_const(a) {
        return bool_const(!b);
    }
    // not(not x) → x.
    let inner = with_ctx(|c| {
        let n = c.term(a);
        if n.op == Op::Not {
            Some(n.children[0])
        } else {
            None
        }
    });
    if let Some(x) = inner {
        return x;
    }
    intern(Op::Not, vec![a], Sort::Bool)
}

/// Logical conjunction.
pub fn and(a: TermId, b: TermId) -> TermId {
    match (as_bool_const(a), as_bool_const(b)) {
        (Some(false), _) | (_, Some(false)) => return bool_const(false),
        (Some(true), _) => return b,
        (_, Some(true)) => return a,
        _ => {}
    }
    if a == b {
        return a;
    }
    if a == not(b) {
        return bool_const(false);
    }
    intern(Op::And, sorted2(a, b), Sort::Bool)
}

/// Logical disjunction.
pub fn or(a: TermId, b: TermId) -> TermId {
    match (as_bool_const(a), as_bool_const(b)) {
        (Some(true), _) | (_, Some(true)) => return bool_const(true),
        (Some(false), _) => return b,
        (_, Some(false)) => return a,
        _ => {}
    }
    if a == b {
        return a;
    }
    if a == not(b) {
        return bool_const(true);
    }
    intern(Op::Or, sorted2(a, b), Sort::Bool)
}

/// Exclusive or.
pub fn xor(a: TermId, b: TermId) -> TermId {
    match (as_bool_const(a), as_bool_const(b)) {
        (Some(x), Some(y)) => return bool_const(x ^ y),
        (Some(false), _) => return b,
        (_, Some(false)) => return a,
        (Some(true), _) => return not(b),
        (_, Some(true)) => return not(a),
        _ => {}
    }
    if a == b {
        return bool_const(false);
    }
    intern(Op::Xor, sorted2(a, b), Sort::Bool)
}

/// Boolean equivalence.
pub fn iff(a: TermId, b: TermId) -> TermId {
    not(xor(a, b))
}

/// Implication `a → b`.
pub fn implies(a: TermId, b: TermId) -> TermId {
    or(not(a), b)
}

/// Boolean if-then-else.
pub fn ite_bool(c: TermId, t: TermId, e: TermId) -> TermId {
    if let Some(b) = as_bool_const(c) {
        return if b { t } else { e };
    }
    if t == e {
        return t;
    }
    // ite(c, true, e) → c ∨ e; ite(c, false, e) → ¬c ∧ e; etc.
    match (as_bool_const(t), as_bool_const(e)) {
        (Some(true), _) => return or(c, e),
        (Some(false), _) => return and(not(c), e),
        (_, Some(true)) => return or(not(c), t),
        (_, Some(false)) => return and(c, t),
        _ => {}
    }
    // ite(!c, t, e) → ite(c, e, t).
    let negated = with_ctx(|ctx| {
        let n = ctx.term(c);
        if n.op == Op::Not {
            Some(n.children[0])
        } else {
            None
        }
    });
    if let Some(c2) = negated {
        return ite_bool(c2, e, t);
    }
    intern(Op::IteBool, vec![c, t, e], Sort::Bool)
}

// ---------------------------------------------------------------------
// Predicates
// ---------------------------------------------------------------------

/// Bitvector equality.
pub fn eq(a: TermId, b: TermId) -> TermId {
    debug_assert_eq!(sort_of(a), sort_of(b), "eq sort mismatch");
    if a == b {
        return bool_const(true);
    }
    let w = width_of(a);
    if let (Some(x), Some(y)) = (as_bv_const(a), as_bv_const(b)) {
        return bool_const(mask(w, x) == mask(w, y));
    }
    // eq(ite(c, k1, k2), k) with constants: resolves to c, !c, or false.
    // This rule makes `split_pc` feasibility checks concrete (paper §4).
    for (x, y) in [(a, b), (b, a)] {
        if let (Some((c, th, el)), Some(k)) = (as_ite(x), as_bv_const(y)) {
            if let (Some(k1), Some(k2)) = (as_bv_const(th), as_bv_const(el)) {
                return match (k1 == k, k2 == k) {
                    (true, true) => bool_const(true),
                    (true, false) => c,
                    (false, true) => not(c),
                    (false, false) => bool_const(false),
                };
            }
        }
    }
    // eq(x + c1, c2) → eq(x, c2 - c1): keeps offset comparisons canonical.
    for (x, y) in [(a, b), (b, a)] {
        if let (Some((base, off)), Some(k)) = (as_add(x), as_bv_const(y)) {
            if let Some(c1) = as_bv_const(off) {
                return eq(base, bv_const(w, k.wrapping_sub(c1)));
            }
        }
    }
    intern(Op::Eq, sorted2(a, b), Sort::Bool)
}

/// Distinctness of two bitvectors.
pub fn ne(a: TermId, b: TermId) -> TermId {
    not(eq(a, b))
}

fn cmp(op: Op, a: TermId, b: TermId) -> TermId {
    debug_assert_eq!(sort_of(a), sort_of(b), "cmp sort mismatch");
    let w = width_of(a);
    if let (Some(x), Some(y)) = (as_bv_const(a), as_bv_const(b)) {
        return bool_const(semantics::cmp_const(&op, w, x, y));
    }
    if a == b {
        return bool_const(matches!(op, Op::Ule | Op::Sle));
    }
    // Bounds against extremes.
    match op {
        Op::Ult => {
            if as_bv_const(b) == Some(0) {
                return bool_const(false); // x < 0 unsigned
            }
            if as_bv_const(a) == Some(0) {
                return ne(a, b); // 0 < x  ⇔  x ≠ 0
            }
        }
        Op::Ule => {
            if as_bv_const(a) == Some(0) {
                return bool_const(true); // 0 <= x
            }
            if as_bv_const(b) == Some(mask(w, u128::MAX)) {
                return bool_const(true); // x <= max
            }
        }
        _ => {}
    }
    intern(op, vec![a, b], Sort::Bool)
}

/// Unsigned less-than.
pub fn ult(a: TermId, b: TermId) -> TermId {
    cmp(Op::Ult, a, b)
}

/// Unsigned less-or-equal.
pub fn ule(a: TermId, b: TermId) -> TermId {
    cmp(Op::Ule, a, b)
}

/// Signed less-than.
pub fn slt(a: TermId, b: TermId) -> TermId {
    cmp(Op::Slt, a, b)
}

/// Signed less-or-equal.
pub fn sle(a: TermId, b: TermId) -> TermId {
    cmp(Op::Sle, a, b)
}

// ---------------------------------------------------------------------
// Bitvector operations
// ---------------------------------------------------------------------

fn bv_unop(op: Op, a: TermId) -> TermId {
    let w = width_of(a);
    if let Some(x) = as_bv_const(a) {
        return bv_const(w, semantics::unop_const(&op, w, x));
    }
    intern(op, vec![a], Sort::BitVec(w))
}

/// Bitwise complement.
pub fn bvnot(a: TermId) -> TermId {
    // not(not x) → x.
    let inner = with_ctx(|c| {
        let n = c.term(a);
        if n.op == Op::BvNot {
            Some(n.children[0])
        } else {
            None
        }
    });
    if let Some(x) = inner {
        return x;
    }
    bv_unop(Op::BvNot, a)
}

/// Two's-complement negation.
pub fn bvneg(a: TermId) -> TermId {
    bv_unop(Op::BvNeg, a)
}

/// Addition (wrapping).
pub fn bvadd(a: TermId, b: TermId) -> TermId {
    debug_assert_eq!(sort_of(a), sort_of(b), "add sort mismatch");
    let w = width_of(a);
    match (as_bv_const(a), as_bv_const(b)) {
        (Some(x), Some(y)) => return bv_const(w, x.wrapping_add(y)),
        // Canonicalize: constant to the right.
        (Some(_), None) => return bvadd(b, a),
        (None, Some(0)) => return a,
        _ => {}
    }
    // (x + c1) + c2 → x + (c1 + c2); (x + c1) + y → (x + y) + c1.
    if let Some((base, off)) = as_add(a) {
        if let Some(c1) = as_bv_const(off) {
            if let Some(c2) = as_bv_const(b) {
                return bvadd(base, bv_const(w, c1.wrapping_add(c2)));
            }
            return bvadd(bvadd(base, b), off);
        }
    }
    if let Some((base, off)) = as_add(b) {
        if as_bv_const(off).is_some() && as_bv_const(b).is_none() {
            return bvadd(bvadd(a, base), off);
        }
    }
    intern(Op::BvAdd, sorted2_keep_const_right(a, b), Sort::BitVec(w))
}

/// Subtraction (wrapping).
pub fn bvsub(a: TermId, b: TermId) -> TermId {
    debug_assert_eq!(sort_of(a), sort_of(b), "sub sort mismatch");
    let w = width_of(a);
    if a == b {
        return bv_const(w, 0);
    }
    if let Some(y) = as_bv_const(b) {
        // x - c → x + (-c): unifies offset arithmetic.
        return bvadd(a, bv_const(w, y.wrapping_neg()));
    }
    if let (Some(x), None) = (as_bv_const(a), as_bv_const(b)) {
        if x == 0 {
            return bvneg(b);
        }
    }
    intern(Op::BvSub, vec![a, b], Sort::BitVec(w))
}

/// Multiplication (wrapping).
pub fn bvmul(a: TermId, b: TermId) -> TermId {
    debug_assert_eq!(sort_of(a), sort_of(b), "mul sort mismatch");
    let w = width_of(a);
    match (as_bv_const(a), as_bv_const(b)) {
        (Some(x), Some(y)) => return bv_const(w, x.wrapping_mul(y)),
        (Some(_), None) => return bvmul(b, a),
        (None, Some(0)) => return bv_const(w, 0),
        (None, Some(1)) => return a,
        _ => {}
    }
    intern(Op::BvMul, sorted2_keep_const_right(a, b), Sort::BitVec(w))
}

fn bv_binop_raw(op: Op, a: TermId, b: TermId) -> TermId {
    debug_assert_eq!(sort_of(a), sort_of(b), "binop sort mismatch");
    let w = width_of(a);
    if let (Some(x), Some(y)) = (as_bv_const(a), as_bv_const(b)) {
        return bv_const(w, semantics::binop_const(&op, w, x, y));
    }
    intern(op, vec![a, b], Sort::BitVec(w))
}

/// Bitwise and.
pub fn bvand(a: TermId, b: TermId) -> TermId {
    let w = width_of(a);
    match (as_bv_const(a), as_bv_const(b)) {
        (Some(_), None) => return bvand(b, a),
        (None, Some(0)) => return bv_const(w, 0),
        (None, Some(m)) if m == mask(w, u128::MAX) => return a,
        _ => {}
    }
    if a == b {
        return a;
    }
    bv_binop_raw(Op::BvAnd, a, b)
}

/// Bitwise or.
pub fn bvor(a: TermId, b: TermId) -> TermId {
    let w = width_of(a);
    match (as_bv_const(a), as_bv_const(b)) {
        (Some(_), None) => return bvor(b, a),
        (None, Some(0)) => return a,
        (None, Some(m)) if m == mask(w, u128::MAX) => return bv_const(w, m),
        _ => {}
    }
    if a == b {
        return a;
    }
    bv_binop_raw(Op::BvOr, a, b)
}

/// Bitwise xor.
pub fn bvxor(a: TermId, b: TermId) -> TermId {
    let w = width_of(a);
    match (as_bv_const(a), as_bv_const(b)) {
        (Some(_), None) => return bvxor(b, a),
        (None, Some(0)) => return a,
        _ => {}
    }
    if a == b {
        return bv_const(w, 0);
    }
    bv_binop_raw(Op::BvXor, a, b)
}

/// Unsigned division; division by zero yields all-ones (SMT-LIB semantics).
///
/// Constant divisors avoid the restoring `divrem_gate` entirely:
/// `x div 0` → all-ones, `x div 1` → `x`, `x div 2^k` → `x >> k`. (The
/// signed variants are derived from this one, so they inherit the
/// rewrites through the `|divisor|` path.)
pub fn bvudiv(a: TermId, b: TermId) -> TermId {
    let w = width_of(a);
    match as_bv_const(b) {
        Some(0) => return bv_const(w, u128::MAX),
        Some(1) => return a,
        Some(d) if d.is_power_of_two() => {
            return bvlshr(a, bv_const(w, d.trailing_zeros() as u128));
        }
        _ => {}
    }
    bv_binop_raw(Op::BvUdiv, a, b)
}

/// Unsigned remainder; remainder by zero yields the dividend.
///
/// Constant divisors fold like [`bvudiv`]: `x rem 0` → `x`,
/// `x rem 1` → `0`, `x rem 2^k` → `x & (2^k - 1)`.
pub fn bvurem(a: TermId, b: TermId) -> TermId {
    let w = width_of(a);
    match as_bv_const(b) {
        Some(0) => return a,
        Some(1) => return bv_const(w, 0),
        Some(d) if d.is_power_of_two() => {
            return bvand(a, bv_const(w, d - 1));
        }
        _ => {}
    }
    bv_binop_raw(Op::BvUrem, a, b)
}

/// Signed division, derived: SMT-LIB `bvsdiv` semantics.
pub fn bvsdiv(a: TermId, b: TermId) -> TermId {
    let w = width_of(a);
    let zero = bv_const(w, 0);
    let na = slt(a, zero);
    let nb = slt(b, zero);
    let abs_a = ite_bv(na, bvneg(a), a);
    let abs_b = ite_bv(nb, bvneg(b), b);
    let q = bvudiv(abs_a, abs_b);
    ite_bv(xor(na, nb), bvneg(q), q)
}

/// Signed remainder (sign follows the dividend), derived: SMT-LIB `bvsrem`.
pub fn bvsrem(a: TermId, b: TermId) -> TermId {
    let w = width_of(a);
    let zero = bv_const(w, 0);
    let na = slt(a, zero);
    let nb = slt(b, zero);
    let abs_a = ite_bv(na, bvneg(a), a);
    let abs_b = ite_bv(nb, bvneg(b), b);
    let r = bvurem(abs_a, abs_b);
    ite_bv(na, bvneg(r), r)
}

fn shift(op: Op, a: TermId, b: TermId) -> TermId {
    if let Some(k) = as_bv_const(b) {
        if k == 0 {
            return a;
        }
        // Oversized amounts shift everything out: zero for logical
        // shifts, a sign-bit fill for arithmetic right shift.
        let w = width_of(a);
        if k >= w as u128 {
            return match op {
                Op::BvAshr => sext(w, extract(w - 1, w - 1, a)),
                _ => bv_const(w, 0),
            };
        }
    }
    bv_binop_raw(op, a, b)
}

/// Logical shift left; amounts >= width yield zero.
pub fn bvshl(a: TermId, b: TermId) -> TermId {
    shift(Op::BvShl, a, b)
}

/// Logical shift right; amounts >= width yield zero.
pub fn bvlshr(a: TermId, b: TermId) -> TermId {
    shift(Op::BvLshr, a, b)
}

/// Arithmetic shift right; amounts >= width replicate the sign bit.
pub fn bvashr(a: TermId, b: TermId) -> TermId {
    shift(Op::BvAshr, a, b)
}

/// Concatenation: `hi` becomes the high bits.
pub fn concat(hi: TermId, lo: TermId) -> TermId {
    let wh = width_of(hi);
    let wl = width_of(lo);
    let w = wh + wl;
    assert!(w <= 128, "concat width {w} exceeds 128");
    if let (Some(h), Some(l)) = (as_bv_const(hi), as_bv_const(lo)) {
        return bv_const(w, (h << wl) | mask(wl, l));
    }
    // concat(extract(h1, l1, x), extract(h2, l2, x)) with l1 == h2 + 1
    // re-assembles to extract(h1, l2, x).
    let merged = with_ctx(|c| {
        let nh = c.term(hi);
        let nl = c.term(lo);
        if let (Op::Extract(h1, l1), Op::Extract(h2, l2)) = (&nh.op, &nl.op) {
            if nh.children[0] == nl.children[0] && *l1 == *h2 + 1 {
                return Some((*h1, *l2, nh.children[0]));
            }
        }
        None
    });
    if let Some((h1, l2, x)) = merged {
        return extract(h1, l2, x);
    }
    intern(Op::Concat, vec![hi, lo], Sort::BitVec(w))
}

/// Bit extraction `[hi:lo]`, inclusive, producing `hi - lo + 1` bits.
pub fn extract(hi: u32, lo: u32, a: TermId) -> TermId {
    let wa = width_of(a);
    assert!(hi >= lo && hi < wa, "bad extract [{hi}:{lo}] of width {wa}");
    let w = hi - lo + 1;
    if w == wa {
        return a;
    }
    if let Some(x) = as_bv_const(a) {
        return bv_const(w, x >> lo);
    }
    // extract of concat: resolve when fully inside one side.
    let node = with_ctx(|c| {
        let n = c.term(a);
        (n.op.clone(), n.children.clone())
    });
    match node {
        (Op::Concat, ch) => {
            let wl = width_of(ch[1]);
            if hi < wl {
                return extract(hi, lo, ch[1]);
            }
            if lo >= wl {
                return extract(hi - wl, lo - wl, ch[0]);
            }
        }
        (Op::ZeroExt, ch) => {
            let wi = width_of(ch[0]);
            if hi < wi {
                return extract(hi, lo, ch[0]);
            }
            if lo >= wi {
                return bv_const(w, 0);
            }
            // Partial overlap: the kept high bits are all zero.
            return zext(w, extract(wi - 1, lo, ch[0]));
        }
        (Op::SignExt, ch) => {
            let wi = width_of(ch[0]);
            if hi < wi {
                return extract(hi, lo, ch[0]);
            }
        }
        (Op::Extract(_, lo2), ch) => {
            return extract(hi + lo2, lo + lo2, ch[0]);
        }
        (Op::IteBv, ch) => {
            // Push extraction into ite when branches are constants, keeping
            // pc-shaped terms flat for split_pc.
            if as_bv_const(ch[1]).is_some() && as_bv_const(ch[2]).is_some() {
                return ite_bv(ch[0], extract(hi, lo, ch[1]), extract(hi, lo, ch[2]));
            }
        }
        _ => {}
    }
    intern(Op::Extract(hi, lo), vec![a], Sort::BitVec(w))
}

/// Zero-extends `a` to `to` bits.
pub fn zext(to: u32, a: TermId) -> TermId {
    let wa = width_of(a);
    assert!(to >= wa && to <= 128, "bad zext to {to} from {wa}");
    if to == wa {
        return a;
    }
    if let Some(x) = as_bv_const(a) {
        return bv_const(to, x);
    }
    intern(Op::ZeroExt, vec![a], Sort::BitVec(to))
}

/// Sign-extends `a` to `to` bits.
pub fn sext(to: u32, a: TermId) -> TermId {
    let wa = width_of(a);
    assert!(to >= wa && to <= 128, "bad sext to {to} from {wa}");
    if to == wa {
        return a;
    }
    if let Some(x) = as_bv_const(a) {
        let s = crate::term::to_signed(wa, x) as u128;
        return bv_const(to, s);
    }
    intern(Op::SignExt, vec![a], Sort::BitVec(to))
}

/// Bitvector if-then-else.
pub fn ite_bv(c: TermId, t: TermId, e: TermId) -> TermId {
    debug_assert_eq!(sort_of(t), sort_of(e), "ite sort mismatch");
    if let Some(b) = as_bool_const(c) {
        return if b { t } else { e };
    }
    if t == e {
        return t;
    }
    // ite(!c, t, e) → ite(c, e, t).
    let negated = with_ctx(|ctx| {
        let n = ctx.term(c);
        if n.op == Op::Not {
            Some(n.children[0])
        } else {
            None
        }
    });
    if let Some(c2) = negated {
        return ite_bv(c2, e, t);
    }
    // One level of redundant-nesting collapse.
    if let Some((c2, t2, _)) = as_ite(t) {
        if c2 == c {
            return ite_bv(c, t2, e);
        }
    }
    if let Some((c2, _, e2)) = as_ite(e) {
        if c2 == c {
            return ite_bv(c, t, e2);
        }
    }
    let w = width_of(t);
    intern(Op::IteBv, vec![c, t, e], Sort::BitVec(w))
}

/// Applies uninterpreted function `uf` to `args`.
pub fn uf_apply(uf: UfId, args: &[TermId]) -> TermId {
    let result = with_ctx(|c| {
        let sig = c.uf_sig(uf);
        assert_eq!(sig.args.len(), args.len(), "uf arity mismatch");
        sig.result
    });
    for (i, &a) in args.iter().enumerate() {
        let expect = with_ctx(|c| c.uf_sig(uf).args[i]);
        assert_eq!(width_of(a), expect, "uf arg {i} width mismatch");
    }
    intern(Op::UfApply(uf), args.to_vec(), Sort::BitVec(result))
}

/// Orders commutative children canonically to improve sharing.
fn sorted2(a: TermId, b: TermId) -> Vec<TermId> {
    if a <= b {
        vec![a, b]
    } else {
        vec![b, a]
    }
}

/// Like [`sorted2`], but never moves a constant to the left: the
/// "constant on the right" canonical form is part of this module's API.
fn sorted2_keep_const_right(a: TermId, b: TermId) -> Vec<TermId> {
    if as_bv_const(b).is_some() {
        vec![a, b]
    } else {
        sorted2(a, b)
    }
}
