//! Tests for the SMT layer: simplification, solving, models, and a
//! property test cross-checking the bit-blaster against the term semantics.

use crate::model::Model;
use crate::solver::{check, check_with, verify, CheckResult, SolverConfig, VerifyResult};
use crate::term::with_ctx;
use crate::{reset_ctx, SBool, BV};
use serval_check::prelude::*;

fn proved(assumptions: &[SBool], goal: SBool) -> bool {
    verify(assumptions, goal).is_proved()
}

#[test]
fn constant_folding() {
    reset_ctx();
    let a = BV::lit(32, 20) + BV::lit(32, 22);
    assert_eq!(a.as_const(), Some(42));
    let b = BV::lit(8, 0xf0) | BV::lit(8, 0x0f);
    assert_eq!(b.as_const(), Some(0xff));
    let c = BV::lit(8, 200) * BV::lit(8, 2); // wraps
    assert_eq!(c.as_const(), Some(144));
    let d = BV::lit(16, 0x8000).ashr(BV::lit(16, 15));
    assert_eq!(d.as_const(), Some(0xffff));
    assert!((BV::lit(8, 3).ult(BV::lit(8, 5))).is_true());
    assert!((BV::lit(8, 0xff).slt(BV::lit(8, 0))).is_true()); // -1 < 0 signed
}

#[test]
fn identity_simplifications() {
    reset_ctx();
    let x = BV::fresh(32, "x");
    assert_eq!(x + BV::lit(32, 0), x);
    assert_eq!(x * BV::lit(32, 1), x);
    assert_eq!(x ^ x, BV::lit(32, 0));
    assert_eq!(x - x, BV::lit(32, 0));
    assert_eq!(x & x, x);
    assert_eq!(x | BV::lit(32, 0), x);
    assert_eq!((x & BV::lit(32, 0)).as_const(), Some(0));
    assert!(x.eq_(x).is_true());
    assert!(x.ult(x).is_false());
    assert!(x.ule(x).is_true());
}

#[test]
fn add_constant_gathering() {
    reset_ctx();
    let x = BV::fresh(64, "x");
    let a = x + BV::lit(64, 5) + BV::lit(64, 7);
    let b = x + BV::lit(64, 12);
    assert_eq!(a, b, "chained constant adds must canonicalize");
    let c = x - BV::lit(64, 3);
    let d = x + BV::lit(64, 3u128.wrapping_neg());
    assert_eq!(c, d, "subtraction of a constant becomes addition");
}

#[test]
fn ite_simplifications() {
    reset_ctx();
    let c = SBool::fresh("c");
    let x = BV::fresh(8, "x");
    let y = BV::fresh(8, "y");
    assert_eq!(c.select(x, x), x);
    assert_eq!(SBool::lit(true).select(x, y), x);
    assert_eq!(SBool::lit(false).select(x, y), y);
    // eq(ite(c, 4, 2), 4) → c  (the split-pc feasibility pattern).
    let pc = c.select(BV::lit(64, 4), BV::lit(64, 2));
    assert_eq!(pc.eq_(BV::lit(64, 4)), c);
    assert_eq!(pc.eq_(BV::lit(64, 2)), !c);
    assert!(pc.eq_(BV::lit(64, 9)).is_false());
}

#[test]
fn verify_commutativity_and_assoc() {
    reset_ctx();
    let x = BV::fresh(16, "x");
    let y = BV::fresh(16, "y");
    let z = BV::fresh(16, "z");
    assert!(proved(&[], (x + y).eq_(y + x)));
    assert!(proved(&[], ((x + y) + z).eq_(x + (y + z))));
    assert!(proved(&[], (x * y).eq_(y * x)));
    assert!(proved(&[], ((x ^ y) ^ y).eq_(x)));
}

#[test]
fn verify_finds_counterexample() {
    reset_ctx();
    let x = BV::fresh(8, "x");
    // x + 1 > x fails at x = 0xff.
    match verify(&[], (x + BV::lit(8, 1)).ugt(x)) {
        VerifyResult::Counterexample(m) => {
            assert_eq!(m.eval_bv(x.0), 0xff);
        }
        r => panic!("expected counterexample, got {r:?}"),
    }
}

#[test]
fn verify_with_assumptions() {
    reset_ctx();
    let x = BV::fresh(8, "x");
    let lt = x.ult(BV::lit(8, 0x80));
    // Under the assumption, x + 1 > x does hold.
    assert!(proved(&[lt], (x + BV::lit(8, 1)).ugt(x)));
}

#[test]
fn signed_comparisons() {
    reset_ctx();
    let x = BV::fresh(8, "x");
    let y = BV::fresh(8, "y");
    // slt(x, y) == ult(x ^ 0x80, y ^ 0x80).
    let lhs = x.slt(y);
    let rhs = (x ^ BV::lit(8, 0x80)).ult(y ^ BV::lit(8, 0x80));
    assert!(proved(&[], lhs.iff(rhs)));
}

#[test]
fn shift_semantics() {
    reset_ctx();
    let x = BV::fresh(8, "x");
    // Oversized shifts yield zero (logical) / sign (arithmetic).
    assert!(proved(&[], x.shl(BV::lit(8, 8)).eq_(BV::lit(8, 0))));
    assert!(proved(&[], x.lshr(BV::lit(8, 9)).eq_(BV::lit(8, 0))));
    let sign = x.slt(BV::lit(8, 0)).select(BV::lit(8, 0xff), BV::lit(8, 0));
    assert!(proved(&[], x.ashr(BV::lit(8, 200)).eq_(sign)));
    // shl by 1 doubles.
    assert!(proved(&[], x.shl(BV::lit(8, 1)).eq_(x + x)));
}

#[test]
fn division_relation() {
    reset_ctx();
    let a = BV::fresh(8, "a");
    let b = BV::fresh(8, "b");
    let nz = !b.is_zero();
    let q = a.udiv(b);
    let r = a.urem(b);
    assert!(proved(&[nz], (q * b + r).eq_(a)));
    assert!(proved(&[nz], r.ult(b)));
    // Division by zero: SMT-LIB semantics.
    let z = BV::lit(8, 0);
    assert!(proved(&[b.eq_(z)], a.udiv(b).eq_(BV::lit(8, 0xff))));
    assert!(proved(&[b.eq_(z)], a.urem(b).eq_(a)));
}

#[test]
fn signed_division() {
    reset_ctx();
    // Exhaustive spot checks vs Rust semantics at width 8.
    for (x, y) in [(7i8, 2i8), (-7, 2), (7, -2), (-7, -2), (-128, -1)] {
        let a = BV::lit(8, x as u8 as u128);
        let b = BV::lit(8, y as u8 as u128);
        let q = a.sdiv(b);
        let r = a.srem(b);
        let expect_q = x.wrapping_div(y) as u8 as u128;
        let expect_r = x.wrapping_rem(y) as u8 as u128;
        assert_eq!(q.as_const(), Some(expect_q), "sdiv {x}/{y}");
        assert_eq!(r.as_const(), Some(expect_r), "srem {x}%{y}");
    }
}

#[test]
fn extract_concat_roundtrip() {
    reset_ctx();
    let x = BV::fresh(32, "x");
    let hi = x.extract(31, 16);
    let lo = x.extract(15, 0);
    assert_eq!(hi.concat(lo), x, "re-concatenation simplifies structurally");
    assert!(proved(&[], hi.concat(lo).eq_(x)));
    // zext/sext agree on non-negative values.
    let small = BV::fresh(8, "s");
    let nonneg = small.slt(BV::lit(8, 0x80));
    assert!(proved(&[nonneg], small.zext(16).eq_(small.sext(16))));
}

#[test]
fn uf_congruence() {
    reset_ctx();
    let f = with_ctx(|c| c.declare_uf("f", vec![8], 8));
    let x = BV::fresh(8, "x");
    let y = BV::fresh(8, "y");
    let fx = BV(crate::build::uf_apply(f, &[x.0]));
    let fy = BV(crate::build::uf_apply(f, &[y.0]));
    // Congruence: x == y → f(x) == f(y).
    assert!(proved(&[x.eq_(y)], fx.eq_(fy)));
    // But f(x) == f(y) is not valid in general.
    assert!(!proved(&[], fx.eq_(fy)));
    // And distinct outputs for distinct inputs are satisfiable.
    match check(&[x.ne_(y), fx.ne_(fy)]) {
        CheckResult::Sat(m) => {
            assert_ne!(m.eval_bv(x.0), m.eval_bv(y.0));
        }
        r => panic!("expected sat, got {r:?}"),
    }
}

#[test]
fn model_evaluates_whole_query() {
    reset_ctx();
    let x = BV::fresh(8, "x");
    let y = BV::fresh(8, "y");
    let constraint = (x * y).eq_(BV::lit(8, 35)) & x.ult(y);
    match check(&[constraint]) {
        CheckResult::Sat(m) => {
            assert!(m.eval_bool(constraint.0), "model must satisfy the query");
            let xv = m.eval_bv(x.0);
            let yv = m.eval_bv(y.0);
            assert_eq!((xv * yv) & 0xff, 35);
            assert!(xv < yv);
        }
        r => panic!("expected sat, got {r:?}"),
    }
}

#[test]
fn conflict_budget_gives_unknown() {
    reset_ctx();
    // A multiplication inversion query that is hard for a tiny budget.
    let x = BV::fresh(32, "x");
    let y = BV::fresh(32, "y");
    let goal = (x * y).ne_(BV::lit(32, 0x12345677));
    let cfg = SolverConfig {
        conflict_budget: Some(5),
        ..SolverConfig::default()
    };
    let q = [!goal, x.ugt(BV::lit(32, 1)), y.ugt(BV::lit(32, 1))];
    match check_with(cfg, &q) {
        CheckResult::Unknown => {}
        CheckResult::Sat(_) => {} // a lucky model within budget is fine
        r => panic!("unexpected {r:?}"),
    }
}

#[test]
fn wide_terms_128_bits() {
    reset_ctx();
    let x = BV::fresh(64, "x");
    // zext to 128 and multiply: check (x * 1)<<0 round trips at 128 bits.
    let wide = x.zext(128);
    let sq = wide * BV::lit(128, 2);
    assert!(proved(&[], sq.extract(64, 1).eq_(x)));
}

// ---------------------------------------------------------------------
// Property test: blaster vs. term semantics
// ---------------------------------------------------------------------

/// A tiny stack machine for generating random well-sorted terms of width 8.
fn build_term(opcodes: &[u8], vars: &[BV]) -> BV {
    let mut stack: Vec<BV> = vec![vars[0]];
    for &op in opcodes {
        let a = *stack.last().unwrap();
        let b = if stack.len() >= 2 {
            stack[stack.len() - 2]
        } else {
            vars[1]
        };
        let r = match op % 18 {
            0 => a + b,
            1 => a - b,
            2 => a * b,
            3 => a & b,
            4 => a | b,
            5 => a ^ b,
            6 => !a,
            7 => a.neg(),
            8 => a.shl(b),
            9 => a.lshr(b),
            10 => a.ashr(b),
            11 => a.udiv(b),
            12 => a.urem(b),
            13 => a.ult(b).select(a, b),
            14 => a.slt(b).select(a, b),
            15 => a.eq_(b).select(a + b, a - b),
            16 => a.extract(7, 4).concat(b.extract(3, 0)),
            17 => a.extract(3, 0).zext(8) + b.extract(7, 4).sext(8),
            _ => unreachable!(),
        };
        stack.push(r);
        if stack.len() > 4 {
            stack.remove(0);
        }
    }
    *stack.last().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// For a random term t and random inputs, the bit-blasted circuit and
    /// the direct evaluator must agree: asserting `inputs = model` and
    /// `t != eval(t)` must be UNSAT, and with `t == eval(t)` must be SAT.
    #[test]
    fn blaster_agrees_with_evaluator(
        opcodes in prop::collection::vec(any::<u8>(), 1..24),
        x in any::<u8>(),
        y in any::<u8>(),
        z in any::<u8>(),
    ) {
        reset_ctx();
        let vars = [BV::fresh(8, "x"), BV::fresh(8, "y"), BV::fresh(8, "z")];
        let t = build_term(&opcodes, &vars);
        let mut m = Model::default();
        m.set_bv(vars[0].0, x as u128);
        m.set_bv(vars[1].0, y as u128);
        m.set_bv(vars[2].0, z as u128);
        let expected = m.eval_bv(t.0);
        let pins = [
            vars[0].eq_(BV::lit(8, x as u128)),
            vars[1].eq_(BV::lit(8, y as u128)),
            vars[2].eq_(BV::lit(8, z as u128)),
        ];
        // t must equal the evaluator's answer under the pinned inputs.
        let goal = t.eq_(BV::lit(8, expected));
        prop_assert!(
            verify(&pins, goal).is_proved(),
            "blaster disagrees with evaluator: expected {expected:#x}"
        );
    }
}

// ---------------------------------------------------------------------
// Additional algebraic properties (solver-checked)
// ---------------------------------------------------------------------

#[test]
fn distributivity_and_negation() {
    reset_ctx();
    let x = BV::fresh(8, "x");
    let y = BV::fresh(8, "y");
    let z = BV::fresh(8, "z");
    assert!(proved(&[], (x * (y + z)).eq_(x * y + x * z)));
    assert!(proved(&[], (x.neg()).eq_(!x + BV::lit(8, 1))));
    assert!(proved(&[], (x - y).eq_(x + y.neg())));
}

#[test]
fn shift_composition() {
    reset_ctx();
    let x = BV::fresh(16, "x");
    // (x << 3) << 4 == x << 7.
    let lhs = x.shl(BV::lit(16, 3)).shl(BV::lit(16, 4));
    assert!(proved(&[], lhs.eq_(x.shl(BV::lit(16, 7)))));
    // Arithmetic then logical shift right relation on non-negative values.
    let nonneg = x.slt(BV::lit(16, 0x8000));
    assert!(proved(&[nonneg], x.ashr(BV::lit(16, 5)).eq_(x.lshr(BV::lit(16, 5)))));
}

#[test]
fn extension_properties() {
    reset_ctx();
    let x = BV::fresh(8, "x");
    // zext then trunc is the identity.
    assert!(proved(&[], x.zext(32).trunc(8).eq_(x)));
    // sext preserves signed comparisons.
    let y = BV::fresh(8, "y");
    let narrow = x.slt(y);
    let wide = x.sext(16).slt(y.sext(16));
    assert!(proved(&[], narrow.iff(wide)));
    // zext preserves unsigned comparisons.
    let wide = x.zext(16).ult(y.zext(16));
    assert!(proved(&[], x.ult(y).iff(wide)));
}

#[test]
fn mulh_via_wide_multiply() {
    reset_ctx();
    // The RISC-V mulhu lowering: high half of zext multiply matches a
    // manual decomposition at 8 bits.
    let x = BV::fresh(8, "x");
    let y = BV::fresh(8, "y");
    let wide = x.zext(16) * y.zext(16);
    let hi = wide.extract(15, 8);
    let lo = wide.extract(7, 0);
    assert!(proved(&[], lo.eq_(x * y)));
    // hi:lo reassembles the wide product.
    assert!(proved(&[], hi.concat(lo).eq_(wide)));
}

#[test]
fn urem_bounds_and_step() {
    reset_ctx();
    let a = BV::fresh(8, "a");
    let n = BV::fresh(8, "n");
    let nz = !n.is_zero();
    // (a + n) % n == a % n.
    let wraps = (a + n).urem(n);
    // Careful: a + n can wrap at 8 bits, where the identity fails; guard.
    let no_ovf = a.zext(9) + n.zext(9);
    let fits = no_ovf.ult(BV::lit(9, 256));
    assert!(proved(&[nz, fits], wraps.eq_(a.urem(n))));
}

#[test]
fn ite_distributes_over_ops() {
    reset_ctx();
    let c = SBool::fresh("c");
    let x = BV::fresh(8, "x");
    let y = BV::fresh(8, "y");
    let z = BV::fresh(8, "z");
    // ite(c, x, y) + z == ite(c, x + z, y + z).
    let lhs = c.select(x, y) + z;
    let rhs = c.select(x + z, y + z);
    assert!(proved(&[], lhs.eq_(rhs)));
}

#[test]
fn uf_two_arguments() {
    reset_ctx();
    let f = with_ctx(|c| c.declare_uf("g", vec![8, 8], 8));
    let a = BV::fresh(8, "a");
    let b = BV::fresh(8, "b");
    let ab = BV(crate::build::uf_apply(f, &[a.0, b.0]));
    let ba = BV(crate::build::uf_apply(f, &[b.0, a.0]));
    // Congruence needs both arguments equal.
    assert!(proved(&[a.eq_(b)], ab.eq_(ba)));
    assert!(!proved(&[], ab.eq_(ba)), "uninterpreted g need not be symmetric");
}

#[test]
fn unsat_from_contradictory_assumptions() {
    reset_ctx();
    let x = BV::fresh(8, "x");
    // Contradictory assumptions prove anything (vacuous truth).
    let asm = [x.ult(BV::lit(8, 4)), x.ugt(BV::lit(8, 9))];
    assert!(proved(&asm, x.eq_(BV::lit(8, 0xee))));
}

// ---------------------------------------------------------------------
// Constant-divisor rewrites
// ---------------------------------------------------------------------

#[test]
fn division_by_constant_short_circuits() {
    reset_ctx();
    let a = BV::fresh(8, "a");
    let z = BV::lit(8, 0);
    // SMT-LIB: x div 0 = all-ones, x rem 0 = x.
    assert_eq!(a.udiv(z), BV::lit(8, 0xff));
    assert_eq!(a.urem(z), a);
    assert_eq!(a.udiv(BV::lit(8, 1)), a);
    assert_eq!(a.urem(BV::lit(8, 1)), BV::lit(8, 0));
    // Power-of-two divisors become shifts/masks, never a division circuit.
    assert_eq!(a.udiv(BV::lit(8, 8)), a.lshr(BV::lit(8, 3)));
    assert_eq!(a.urem(BV::lit(8, 8)), a & BV::lit(8, 7));
    assert_eq!(a.udiv(BV::lit(8, 128)), a.lshr(BV::lit(8, 7)));
    assert_eq!(a.urem(BV::lit(8, 2)), a & BV::lit(8, 1));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For every concrete (x, d) the symbolic `x op d` with a *constant*
    /// divisor — which may take the shift/mask rewrite, the short
    /// circuit, or the full division circuit — must agree with the
    /// constant-folded semantics of the same operation.
    #[test]
    fn prop_const_divisor_matches_concrete_semantics(
        x in any::<u8>(),
        d in any::<u8>(),
        which in any::<u8>(),
    ) {
        reset_ctx();
        let a = BV::fresh(8, "a");
        let db = BV::lit(8, d as u128);
        let xc = BV::lit(8, x as u128);
        let pin = a.eq_(xc);
        // The constant-constant fold is the semantics oracle.
        let (sym, oracle) = match which % 4 {
            0 => (a.udiv(db), xc.udiv(db)),
            1 => (a.urem(db), xc.urem(db)),
            2 => (a.sdiv(db), xc.sdiv(db)),
            _ => (a.srem(db), xc.srem(db)),
        };
        let expected = oracle.as_const().expect("const operands must fold");
        prop_assert!(
            verify(&[pin], sym.eq_(BV::lit(8, expected))).is_proved(),
            "x={x} d={d} op={} expected {expected:#x}",
            which % 4
        );
    }
}

// ---------------------------------------------------------------------
// Incremental discharge sessions
// ---------------------------------------------------------------------

use crate::session::Session;
use crate::solver::CheckOutcome;

fn fresh_check(assumptions: &[SBool], goal: SBool) -> CheckOutcome {
    let mut q: Vec<SBool> = assumptions.to_vec();
    q.push(!goal);
    crate::solver::check_full(SolverConfig::default(), &q, None)
}

#[test]
fn session_basic_stream_of_goals() {
    reset_ctx();
    let x = BV::fresh(8, "x");
    let y = BV::fresh(8, "y");
    let mut s = Session::new(SolverConfig::default(), None);
    s.assume(x.ult(y));
    // Proved goal.
    let out = s.solve_goal(x.ule(y));
    assert!(matches!(out.result, CheckResult::Unsat));
    assert_eq!(out.stats.session_goals, 1);
    assert_eq!(out.stats.reused_vars, 0, "goal 1 pays for the base encoding");
    // Refuted goal, model from the live session.
    let out = s.solve_goal(y.ule(x));
    assert_eq!(out.stats.session_goals, 2);
    assert!(out.stats.reused_vars > 0, "goal 2 reuses the base encoding");
    let CheckResult::Sat(m) = out.result else {
        panic!("expected refutation, got {:?}", out.result);
    };
    assert!(m.eval_bool(x.ult(y).0), "model must satisfy the assumption");
    assert!(!m.eval_bool(y.ule(x).0), "model must refute the goal");
    // A later proved goal is unaffected by the refuted one.
    let out = s.solve_goal(x.ne_(y));
    assert!(matches!(out.result, CheckResult::Unsat));
    assert_eq!(s.goals_discharged(), 3);
}

#[test]
fn session_retirement_does_not_leak_between_goals() {
    reset_ctx();
    let x = BV::fresh(8, "x");
    let mut s = Session::new(SolverConfig::default(), None);
    s.assume(x.ult(BV::lit(8, 100)));
    // Goal 1: proved.
    assert!(matches!(
        s.solve_goal(x.ult(BV::lit(8, 200))).result,
        CheckResult::Unsat
    ));
    // Goal 2: refuted; its negation pins x == 5 while active.
    assert!(matches!(
        s.solve_goal(x.ne_(BV::lit(8, 5))).result,
        CheckResult::Sat(_)
    ));
    // Goal 3: refuted *only* by x == 6. If retiring goal 2 leaked its
    // negation (x == 5) into the clause set, this would flip to Unsat.
    let out = s.solve_goal(x.ne_(BV::lit(8, 6)));
    let CheckResult::Sat(m) = out.result else {
        panic!("goal 3 must stay refuted after goal 2 retired, got {:?}", out.result);
    };
    assert_eq!(m.eval_bv(x.0), 6, "the only countermodel is x = 6");
    // Goal 4: still proved, with everything retired.
    assert!(matches!(
        s.solve_goal(x.ule(BV::lit(8, 99))).result,
        CheckResult::Unsat
    ));
}

/// Plan-driven purging with a shared divider circuit: `x udiv y` and
/// `x urem y` (non-constant divisor) share one restoring-divider
/// encoding, so retiring the udiv goal must *defer* until the urem
/// goal expires — purging the shared circuit early would leave the
/// later goal underconstrained and flip its verdict.
#[test]
fn session_purging_defers_coupled_divrem_circuits() {
    reset_ctx();
    let x = BV::fresh(8, "x");
    let y = BV::fresh(8, "y");
    let q = x.udiv(y);
    let r = x.urem(y);
    let assumptions = vec![
        x.eq_(BV::lit(8, 23)),
        y.eq_(BV::lit(8, 5)),
        BV::fresh(8, "pad").ult(BV::lit(8, 7)),
    ];
    let goals = vec![
        q.eq_(BV::lit(8, 4)),  // uses the divider; proved
        r.eq_(BV::lit(8, 3)),  // reuses the same circuit; proved
        r.eq_(BV::lit(8, 2)),  // refuted: needs the circuit still live
        x.ult(BV::lit(8, 200)), // divider fully expired by now
    ];
    let mut s = Session::new(SolverConfig::default(), None);
    for &a in &assumptions {
        s.assume(a);
    }
    let neg: Vec<SBool> = goals.iter().map(|&g| !g).collect();
    s.plan_goals(&neg);
    for (i, &g) in goals.iter().enumerate() {
        let out = s.solve_goal(g);
        let fresh = fresh_check(&assumptions, g);
        match (&out.result, &fresh.result) {
            (CheckResult::Unsat, CheckResult::Unsat) => {}
            (CheckResult::Sat(m), CheckResult::Sat(_)) => {
                assert!(!m.eval_bool(g.0), "goal {i}: model must refute the goal");
                for &a in &assumptions {
                    assert!(m.eval_bool(a.0), "goal {i}: model violates an assumption");
                }
            }
            (sv, fv) => panic!("goal {i}: session {sv:?} vs fresh {fv:?}"),
        }
    }
}

/// A goal that deviates from the announced plan discards the plan
/// (purging stops) but must still be answered correctly, as must every
/// goal after it.
#[test]
fn session_off_plan_goal_disables_purging_but_stays_sound() {
    reset_ctx();
    let x = BV::fresh(8, "x");
    let mut s = Session::new(SolverConfig::default(), None);
    s.assume(x.ult(BV::lit(8, 50)));
    let planned = vec![x.ult(BV::lit(8, 60)), x.ult(BV::lit(8, 70))];
    let neg: Vec<SBool> = planned.iter().map(|&g| !g).collect();
    s.plan_goals(&neg);
    // First goal on-plan: proved (and goal-1-only terms purged).
    assert!(matches!(
        s.solve_goal(planned[0]).result,
        CheckResult::Unsat
    ));
    // Off-plan goal: refuted, with a model.
    let out = s.solve_goal(x.ne_(BV::lit(8, 9)));
    let CheckResult::Sat(m) = out.result else {
        panic!("off-plan goal must be refuted");
    };
    assert_eq!(m.eval_bv(x.0), 9);
    // The originally planned second goal still answers correctly.
    assert!(matches!(
        s.solve_goal(planned[1]).result,
        CheckResult::Unsat
    ));
}

#[test]
fn session_with_unsat_base_proves_everything() {
    reset_ctx();
    let x = BV::fresh(8, "x");
    let mut s = Session::new(SolverConfig::default(), None);
    s.assume(x.ult(BV::lit(8, 4)));
    s.assume(x.ugt(BV::lit(8, 9)));
    // Vacuous truth, exactly like the fresh path.
    assert!(matches!(s.solve_goal(x.eq_(BV::lit(8, 77))).result, CheckResult::Unsat));
    assert!(matches!(s.solve_goal(x.ne_(x)).result, CheckResult::Unsat));
}

#[test]
fn session_handles_uninterpreted_functions() {
    reset_ctx();
    let f = with_ctx(|c| c.declare_uf("f", vec![8], 8));
    let x = BV::fresh(8, "x");
    let y = BV::fresh(8, "y");
    let fx = BV(crate::build::uf_apply(f, &[x.0]));
    let fy = BV(crate::build::uf_apply(f, &[y.0]));
    let mut s = Session::new(SolverConfig::default(), None);
    s.assume(x.eq_(y));
    // Congruence must hold even though the second application is only
    // blasted (and its Ackermann pairs only emitted) at goal time.
    assert!(matches!(s.solve_goal(fx.eq_(fy)).result, CheckResult::Unsat));
    // And a fresh application introduced by a later goal still gets its
    // congruence constraints against the existing ones.
    let z = BV::fresh(8, "z");
    let fz = BV(crate::build::uf_apply(f, &[z.0]));
    let out = s.solve_goal(z.eq_(x).implies(fz.eq_(fx)));
    assert!(matches!(out.result, CheckResult::Unsat));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Session discharge must return exactly the fresh-solver verdict
    /// for every goal in a random batch sharing a random assumption
    /// set; refuted-goal countermodels from the live session must
    /// re-evaluate (via the term semantics) to: all assumptions true,
    /// goal false.
    #[test]
    fn prop_session_verdicts_match_fresh_solvers(
        asm_ops in prop::collection::vec(any::<u8>(), 1..8),
        goal_ops in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..12), 1..5),
        bound in any::<u8>(),
        flip in any::<u8>(),
    ) {
        reset_ctx();
        let vars = [BV::fresh(8, "x"), BV::fresh(8, "y"), BV::fresh(8, "z")];
        // A random (often satisfiable, sometimes not) assumption set.
        let t = build_term(&asm_ops, &vars);
        let assumptions = vec![
            t.ule(BV::lit(8, (bound as u128).max(1))),
            vars[0].ult(BV::lit(8, 0xc0)),
        ];
        let goals: Vec<SBool> = goal_ops
            .iter()
            .enumerate()
            .map(|(i, ops)| {
                let lhs = build_term(ops, &vars);
                let rhs = build_term(&[ops[0].wrapping_add(i as u8).wrapping_add(1)], &vars);
                if (flip.wrapping_add(i as u8)) % 2 == 0 {
                    lhs.eq_(rhs)
                } else {
                    lhs.ule(rhs)
                }
            })
            .collect();

        let mut session = Session::new(SolverConfig::default(), None);
        for &a in &assumptions {
            session.assume(a);
        }
        // Announce the stream so the property also exercises goal
        // retirement (plan-driven purging), exactly as the engine does.
        let neg: Vec<SBool> = goals.iter().map(|&g| !g).collect();
        session.plan_goals(&neg);
        for (i, &g) in goals.iter().enumerate() {
            let out = session.solve_goal(g);
            prop_assert_eq!(out.stats.session_goals, i as u64 + 1);
            let fresh = fresh_check(&assumptions, g);
            match (&out.result, &fresh.result) {
                (CheckResult::Unsat, CheckResult::Unsat) => {}
                (CheckResult::Sat(m), CheckResult::Sat(_)) => {
                    for &a in &assumptions {
                        prop_assert!(
                            m.eval_bool(a.0),
                            "goal {}: session model violates an assumption", i
                        );
                    }
                    prop_assert!(
                        !m.eval_bool(g.0),
                        "goal {}: session model does not refute the goal", i
                    );
                }
                (s, f) => {
                    prop_assert!(false, "goal {}: session {:?} vs fresh {:?}", i, s, f);
                }
            }
        }
    }
}

/// A deterministic purge → retract → re-mention stream with plan-scoped
/// elimination forced on. The plan announces only the first two goals,
/// so after goal 2 the session purges goal-local structure and may
/// eliminate any variable the plan says is never mentioned again; the
/// off-plan repeats and strengthened variants that follow re-mention
/// exactly that retired structure, forcing the reintroduction path.
/// Verdicts must match fresh solvers throughout.
#[test]
fn session_elimination_remention_after_purge_stays_sound() {
    reset_ctx();
    let x = BV::fresh(8, "x");
    let y = BV::fresh(8, "y");
    let assumptions = vec![x.ult(BV::lit(8, 50)), y.ult(BV::lit(8, 50))];
    let planned = vec![
        (x * y).ult(BV::lit(8, 0xff)).implies(x.ult(BV::lit(8, 60))), // proved
        (x + y).ult(BV::lit(8, 100)),                                 // proved
    ];
    let cfg = SolverConfig { inprocess: true, session_bve: true, ..SolverConfig::default() };
    let mut s = Session::new(cfg, None);
    for &a in &assumptions {
        s.assume(a);
    }
    let neg: Vec<SBool> = planned.iter().map(|&g| !g).collect();
    s.plan_goals(&neg);
    for &g in &planned {
        assert!(matches!(s.solve_goal(g).result, CheckResult::Unsat));
    }
    // Off-plan re-mention: repeat goal 0 verbatim (its multiplier
    // circuit retired with the plan), then a strengthened variant of
    // goal 1 that is refutable, then goal 0 once more.
    let out = s.solve_goal(planned[0]);
    assert!(matches!(out.result, CheckResult::Unsat), "re-mentioned goal 0 must stay proved");
    let strengthened = (x + y).ult(BV::lit(8, 40));
    let out = s.solve_goal(strengthened);
    let CheckResult::Sat(m) = out.result else {
        panic!("strengthened goal must be refuted, got {:?}", out.result);
    };
    for &a in &assumptions {
        assert!(m.eval_bool(a.0), "countermodel violates an assumption");
    }
    assert!(!m.eval_bool(strengthened.0), "countermodel does not refute the goal");
    assert!(matches!(s.solve_goal(planned[0]).result, CheckResult::Unsat));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Retraction safety for plan-scoped elimination: a session stream
    /// that purges retired goals and then *re-mentions* them — verbatim
    /// repeats and strengthened conjunction variants arriving off-plan,
    /// after the plan said their terms would never be mentioned again —
    /// must match fresh solvers verdict for verdict. Elimination may
    /// only rip out structure that `add_clause` reintroduction can
    /// transparently restore.
    #[test]
    fn prop_session_elimination_matches_fresh_on_remention_streams(
        asm_ops in prop::collection::vec(any::<u8>(), 1..8),
        goal_ops in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..12), 2..5),
        bound in any::<u8>(),
        flip in any::<u8>(),
    ) {
        reset_ctx();
        let vars = [BV::fresh(8, "x"), BV::fresh(8, "y"), BV::fresh(8, "z")];
        let t = build_term(&asm_ops, &vars);
        let assumptions = vec![
            t.ule(BV::lit(8, (bound as u128).max(1))),
            vars[0].ult(BV::lit(8, 0xc0)),
        ];
        let planned: Vec<SBool> = goal_ops
            .iter()
            .enumerate()
            .map(|(i, ops)| {
                let lhs = build_term(ops, &vars);
                let rhs = build_term(&[ops[0].wrapping_add(i as u8).wrapping_add(1)], &vars);
                if (flip.wrapping_add(i as u8)) % 2 == 0 {
                    lhs.eq_(rhs)
                } else {
                    lhs.ule(rhs)
                }
            })
            .collect();
        // The stream the session actually sees: the announced goals in
        // order, then off-plan re-mentions of the first two — one
        // verbatim retract/re-assert, one strengthened (conjoined with
        // a fresh bound on a shared variable).
        let strengthened = SBool(crate::build::and(
            planned[1].0,
            vars[1].ule(BV::lit(8, (bound as u128) | 1)).0,
        ));
        let mut stream: Vec<SBool> = planned.clone();
        stream.push(planned[0]);
        stream.push(strengthened);
        stream.push(planned[1]);

        let cfg = SolverConfig { inprocess: true, session_bve: true, ..SolverConfig::default() };
        let mut session = Session::new(cfg, None);
        for &a in &assumptions {
            session.assume(a);
        }
        let neg: Vec<SBool> = planned.iter().map(|&g| !g).collect();
        session.plan_goals(&neg);
        for (i, &g) in stream.iter().enumerate() {
            let out = session.solve_goal(g);
            prop_assert_eq!(out.stats.session_goals, i as u64 + 1);
            let fresh = fresh_check(&assumptions, g);
            match (&out.result, &fresh.result) {
                (CheckResult::Unsat, CheckResult::Unsat) => {}
                (CheckResult::Sat(m), CheckResult::Sat(_)) => {
                    for &a in &assumptions {
                        prop_assert!(
                            m.eval_bool(a.0),
                            "goal {}: session model violates an assumption", i
                        );
                    }
                    prop_assert!(
                        !m.eval_bool(g.0),
                        "goal {}: session model does not refute the goal", i
                    );
                }
                (s, f) => {
                    prop_assert!(false, "goal {}: session {:?} vs fresh {:?}", i, s, f);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Builder identities agree with the concrete operator semantics on
    /// every pinned input: `x ^ x`, `x & x`, `x | x`, `~~x`, and
    /// oversized shift amounts. Each property pins a symbolic variable
    /// to a concrete value and proves the built term equal to the value
    /// computed by [`crate::semantics`] — so a rewrite that fires in the
    /// builder is checked against the semantics it claims to preserve.
    #[test]
    fn prop_xor_self_matches_semantics(x in any::<u8>()) {
        use crate::semantics;
        use crate::term::Op;
        reset_ctx();
        let a = BV::fresh(8, "a");
        let pin = a.eq_(BV::lit(8, x as u128));
        let want = semantics::binop_const(&Op::BvXor, 8, x as u128, x as u128);
        prop_assert!(proved(&[pin], (a ^ a).eq_(BV::lit(8, want))));
    }

    #[test]
    fn prop_and_self_matches_semantics(x in any::<u8>()) {
        use crate::semantics;
        use crate::term::Op;
        reset_ctx();
        let a = BV::fresh(8, "a");
        let pin = a.eq_(BV::lit(8, x as u128));
        let want = semantics::binop_const(&Op::BvAnd, 8, x as u128, x as u128);
        prop_assert!(proved(&[pin], (a & a).eq_(BV::lit(8, want))));
    }

    #[test]
    fn prop_or_self_matches_semantics(x in any::<u8>()) {
        use crate::semantics;
        use crate::term::Op;
        reset_ctx();
        let a = BV::fresh(8, "a");
        let pin = a.eq_(BV::lit(8, x as u128));
        let want = semantics::binop_const(&Op::BvOr, 8, x as u128, x as u128);
        prop_assert!(proved(&[pin], (a | a).eq_(BV::lit(8, want))));
    }

    #[test]
    fn prop_double_negation_matches_semantics(x in any::<u8>()) {
        use crate::semantics;
        use crate::term::Op;
        reset_ctx();
        let a = BV::fresh(8, "a");
        let pin = a.eq_(BV::lit(8, x as u128));
        let inner = semantics::unop_const(&Op::BvNot, 8, x as u128);
        let want = semantics::unop_const(&Op::BvNot, 8, inner);
        prop_assert!(proved(&[pin], (!!a).eq_(BV::lit(8, want))));
    }

    /// Shift amounts at or beyond the width fold in the builder; the
    /// result must match the semantics' oversized-shift convention
    /// (zero for logical shifts, sign fill for arithmetic).
    #[test]
    fn prop_oversized_shift_matches_semantics(x in any::<u8>(), k in 8u32..=255, which in 0u8..3) {
        use crate::semantics;
        use crate::term::Op;
        reset_ctx();
        let a = BV::fresh(8, "a");
        let pin = a.eq_(BV::lit(8, x as u128));
        let amt = BV::lit(8, k as u128);
        let (sym, op) = match which {
            0 => (a.shl(amt), Op::BvShl),
            1 => (a.lshr(amt), Op::BvLshr),
            _ => (a.ashr(amt), Op::BvAshr),
        };
        let want = semantics::binop_const(&op, 8, x as u128, k as u128);
        prop_assert!(
            proved(&[pin], sym.eq_(BV::lit(8, want))),
            "x={x} k={k} op={op:?} want={want:#x}"
        );
    }
}
