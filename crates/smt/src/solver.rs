//! `check` / `verify` entry points: term-level queries end-to-end.
//!
//! Each call builds a fresh SAT instance, blasts the assertions, finalizes
//! uninterpreted functions, solves, and (for satisfiable queries) extracts
//! a [`Model`] over exactly the symbolic constants appearing in the query.
//!
//! The `*_full` variants additionally surface per-query [`QueryStats`]
//! (conflicts, decisions, propagations, learned clauses, blasted clause
//! count) and accept a cooperative cancellation flag, which the engine
//! crate's portfolio mode uses to stop losing solver variants.

use crate::blast::Blaster;
use crate::bv::SBool;
use crate::model::Model;
use crate::term::{with_ctx, Op, Sort, TermId};
use serval_check::sim;
use serval_sat::{ProofStep, Rephase, SolveResult, Solver};
use std::collections::HashSet;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Whether `SERVAL_INPROCESS` enables SAT inprocessing (default: on).
pub fn inprocess_env_enabled() -> bool {
    std::env::var("SERVAL_INPROCESS")
        .map(|v| !matches!(v.trim(), "0" | "off" | "false"))
        .unwrap_or(true)
}

/// Whether `SERVAL_POLARITY` enables Plaisted–Greenbaum polarity-aware
/// CNF encoding (default: on).
pub fn polarity_env_enabled() -> bool {
    std::env::var("SERVAL_POLARITY")
        .map(|v| !matches!(v.trim(), "0" | "off" | "false"))
        .unwrap_or(true)
}

/// Whether `SERVAL_SESSION_INPROCESS` lets incremental sessions run
/// plan-scoped bounded variable elimination (default: on). With it off,
/// sessions restrict inprocessing to subsumption/strengthening, the
/// pre-PR-10 behaviour.
pub fn session_inprocess_env_enabled() -> bool {
    std::env::var("SERVAL_SESSION_INPROCESS")
        .map(|v| !matches!(v.trim(), "0" | "off" | "false"))
        .unwrap_or(true)
}

/// Whether `SERVAL_LRAT` puts LRAT-style antecedent hints on proof
/// steps (default: on). Hints only change how fast the certificate
/// checker verifies derived clauses, never which certificates a
/// fallback-checking verifier accepts.
pub fn lrat_env_enabled() -> bool {
    std::env::var("SERVAL_LRAT")
        .map(|v| !matches!(v.trim(), "0" | "off" | "false"))
        .unwrap_or(true)
}

/// Configuration for a solver call.
#[derive(Clone, Copy, Debug)]
pub struct SolverConfig {
    /// Abort with `Unknown` after this many SAT conflicts. Serval's
    /// evaluation uses this to demonstrate that proofs without symbolic
    /// optimizations time out (paper §6.4).
    pub conflict_budget: Option<u64>,
    /// Luby restart unit in conflicts (CDCL default: 128).
    pub restart_base: u64,
    /// VSIDS activity decay factor (CDCL default: 0.95).
    pub var_decay: f64,
    /// Initial saved phase for fresh SAT variables (default: `false`).
    pub default_phase: bool,
    /// Geometric restart series instead of Luby (portfolio diversity;
    /// default: `false`).
    pub restart_geometric: bool,
    /// Restart-boundary rephasing policy (default: [`Rephase::Off`]).
    pub rephase: Rephase,
    /// SatELite-style SAT inprocessing (default: `SERVAL_INPROCESS`,
    /// which is on unless set to `0`/`off`/`false`).
    pub inprocess: bool,
    /// Plaisted–Greenbaum polarity-aware CNF (default: `SERVAL_POLARITY`,
    /// which is on unless set to `0`/`off`/`false`).
    pub polarity: bool,
    /// Plan-scoped variable elimination inside incremental sessions
    /// (default: `SERVAL_SESSION_INPROCESS`, on unless set to
    /// `0`/`off`/`false`). Ignored by fresh per-query solves, which
    /// always eliminate when `inprocess` is on.
    pub session_bve: bool,
    /// LRAT-style antecedent hints on logged proof steps (default:
    /// `SERVAL_LRAT`, on unless set to `0`/`off`/`false`). Only
    /// meaningful with proof logging on.
    pub lrat: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            conflict_budget: None,
            restart_base: 128,
            var_decay: 0.95,
            default_phase: false,
            restart_geometric: false,
            rephase: Rephase::Off,
            inprocess: inprocess_env_enabled(),
            polarity: polarity_env_enabled(),
            session_bve: session_inprocess_env_enabled(),
            lrat: lrat_env_enabled(),
        }
    }
}

/// Per-query solver statistics, surfaced instead of discarded so the
/// profiler and the proof reports can show where solving time went.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryStats {
    /// SAT conflicts encountered.
    pub conflicts: u64,
    /// SAT decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses in the database at the end of the solve.
    pub learnts: u64,
    /// Clauses produced by bit-blasting (plus learnt, minus deleted).
    /// For session goals this is the *newly encoded* delta for the goal,
    /// not the solver's running total (see `reused_clauses`).
    pub clauses: usize,
    /// SAT variables allocated by bit-blasting. For session goals this
    /// is the delta, like `clauses`.
    pub vars: usize,
    /// Clauses carried over from earlier goals in the same incremental
    /// session (0 for a fresh per-query solve).
    pub reused_clauses: usize,
    /// SAT variables carried over from earlier goals in the same session.
    pub reused_vars: usize,
    /// Learnt clauses retained from earlier goals in the same session.
    pub reused_learnts: u64,
    /// 1-based position of this goal within its session; 0 for a fresh
    /// per-query solve.
    pub session_goals: u64,
    /// Term-DAG nodes in the query before presolve (0 = presolve off).
    pub presolve_terms_in: usize,
    /// Term-DAG nodes in the query after presolve.
    pub presolve_terms_out: usize,
    /// Symbolic constants in the query before presolve.
    pub presolve_vars_in: usize,
    /// Symbolic constants in the query after presolve.
    pub presolve_vars_out: usize,
    /// Variables removed by bounded variable elimination (net of
    /// reintroductions; 0 = inprocessing off or nothing eliminated).
    pub eliminated_vars: u64,
    /// Clauses deleted by backward subsumption.
    pub subsumed: u64,
    /// Clauses shortened by self-subsuming resolution.
    pub strengthened: u64,
    /// Resolvents added by variable elimination.
    pub resolvents: u64,
    /// Proof-certificate steps checked for this query (0 = uncertified).
    pub cert_steps: u64,
    /// Wall time spent in the independent certificate checker.
    pub cert_wall: Duration,
    /// Wall time of the whole check (blast + solve + model extraction).
    pub wall: Duration,
}

impl QueryStats {
    /// One-line rendering used by proof reports and the profiler.
    pub fn render(&self) -> String {
        let mut line = format!(
            "conflicts={} decisions={} props={} restarts={} learnts={} clauses={} vars={}",
            self.conflicts,
            self.decisions,
            self.propagations,
            self.restarts,
            self.learnts,
            self.clauses,
            self.vars
        );
        if self.session_goals > 0 {
            line.push_str(&format!(
                " session_goal={} reused_clauses={} reused_vars={} reused_learnts={}",
                self.session_goals, self.reused_clauses, self.reused_vars, self.reused_learnts
            ));
        }
        if self.presolve_terms_in > 0 {
            line.push_str(&format!(
                " presolve_terms={}->{} presolve_vars={}->{}",
                self.presolve_terms_in,
                self.presolve_terms_out,
                self.presolve_vars_in,
                self.presolve_vars_out
            ));
        }
        if self.eliminated_vars + self.subsumed + self.strengthened + self.resolvents > 0 {
            line.push_str(&format!(
                " elim_vars={} subsumed={} strengthened={} resolvents={}",
                self.eliminated_vars, self.subsumed, self.strengthened, self.resolvents
            ));
        }
        if self.cert_steps > 0 {
            line.push_str(&format!(
                " cert_steps={} cert_ms={}",
                self.cert_steps,
                self.cert_wall.as_millis()
            ));
        }
        line
    }
}

/// Result of a satisfiability check.
#[derive(Debug)]
pub enum CheckResult {
    /// Satisfiable, with a model.
    Sat(Box<Model>),
    /// Unsatisfiable.
    Unsat,
    /// Budget exhausted.
    Unknown,
    /// Cancelled via the cooperative interrupt flag.
    Interrupted,
}

/// Result of a verification query.
#[derive(Debug)]
pub enum VerifyResult {
    /// The goal holds under the assumptions.
    Proved,
    /// The goal fails; the model is a counterexample.
    Counterexample(Box<Model>),
    /// Budget exhausted.
    Unknown,
    /// Cancelled via the cooperative interrupt flag.
    Interrupted,
}

impl VerifyResult {
    /// Whether the query was proved.
    pub fn is_proved(&self) -> bool {
        matches!(self, VerifyResult::Proved)
    }
}

/// A [`CheckResult`] paired with its solve statistics.
#[derive(Debug)]
pub struct CheckOutcome {
    /// The verdict.
    pub result: CheckResult,
    /// Statistics of the solve that produced it.
    pub stats: QueryStats,
    /// DRAT-style proof log backing an `Unsat` verdict; present only
    /// when the check ran via [`check_full_proof`].
    pub proof: Option<Vec<ProofStep>>,
}

/// A [`VerifyResult`] paired with its solve statistics.
#[derive(Debug)]
pub struct VerifyOutcome {
    /// The verdict.
    pub result: VerifyResult,
    /// Statistics of the solve that produced it.
    pub stats: QueryStats,
}

/// Checks the conjunction of `assertions` for satisfiability.
pub fn check(assertions: &[SBool]) -> CheckResult {
    check_with(SolverConfig::default(), assertions)
}

/// [`check`] with an explicit configuration.
pub fn check_with(cfg: SolverConfig, assertions: &[SBool]) -> CheckResult {
    check_full(cfg, assertions, None).result
}

/// [`check`] with an explicit configuration, an optional cooperative
/// interrupt flag, and full statistics reporting.
pub fn check_full(
    cfg: SolverConfig,
    assertions: &[SBool],
    interrupt: Option<Arc<AtomicBool>>,
) -> CheckOutcome {
    check_full_impl(cfg, assertions, interrupt, false)
}

/// [`check_full`] with DRAT-style proof logging: an `Unsat` outcome
/// carries the certificate steps (see `serval-drat` for the checker).
pub fn check_full_proof(
    cfg: SolverConfig,
    assertions: &[SBool],
    interrupt: Option<Arc<AtomicBool>>,
) -> CheckOutcome {
    check_full_impl(cfg, assertions, interrupt, true)
}

/// Buggify: strip the LRAT hints off every hinted proof step, as a
/// solver version skew or torn hint encoding would. Hints are a
/// performance contract only — the checker must fall back to full RUP
/// and accept the certificate with identical verdicts; the sim sweep
/// pins that.
pub(crate) fn buggify_drop_hints(steps: &mut [ProofStep]) {
    if sim::buggify("lrat-drop-hint") {
        for s in steps.iter_mut() {
            if let ProofStep::DerivedHinted(lits, _) = s {
                *s = ProofStep::Derived(std::mem::take(lits));
            }
        }
    }
}

fn check_full_impl(
    cfg: SolverConfig,
    assertions: &[SBool],
    interrupt: Option<Arc<AtomicBool>>,
    log_proof: bool,
) -> CheckOutcome {
    let start = Instant::now();
    let mut sat = Solver::new();
    sat.set_proof_logging(log_proof);
    sat.set_conflict_budget(cfg.conflict_budget);
    sat.set_restart_base(cfg.restart_base);
    sat.set_var_decay(cfg.var_decay);
    sat.set_default_phase(cfg.default_phase);
    sat.set_restart_geometric(cfg.restart_geometric);
    sat.set_rephase(cfg.rephase);
    // Buggify: degrade inprocessing to a no-op, as a skipped maintenance
    // round under pressure would. Inprocessing is an equisatisfiable
    // rewrite, so every verdict must be identical with or without it —
    // the sim sweep pins that.
    sat.set_inprocess(cfg.inprocess && !sim::buggify("inprocess-skip"), true);
    sat.set_lrat_hints(cfg.lrat);
    sat.set_interrupt(interrupt);
    let mut blaster = Blaster::new();
    blaster.set_polarity(cfg.polarity);
    let mut stats = QueryStats::default();
    for a in assertions {
        // Fast path: a constant-false assertion needs no solving. The
        // synthesized certificate states exactly that: the formula
        // contains the empty clause, which refutes it outright.
        if a.is_false() {
            stats.wall = start.elapsed();
            let proof = log_proof
                .then(|| vec![ProofStep::Input(Vec::new()), ProofStep::Derived(Vec::new())]);
            return CheckOutcome { result: CheckResult::Unsat, stats, proof };
        }
        blaster.assert_true(&mut sat, a.0);
    }
    blaster.finalize(&mut sat);
    let result = match sat.solve() {
        SolveResult::Unsat => CheckResult::Unsat,
        SolveResult::Unknown => CheckResult::Unknown,
        SolveResult::Interrupted => CheckResult::Interrupted,
        SolveResult::Sat => {
            let model = extract_model(&blaster, &sat, assertions.iter().map(|a| a.0));
            CheckResult::Sat(Box::new(model))
        }
    };
    let proof = (log_proof && matches!(result, CheckResult::Unsat)).then(|| {
        let mut steps = sat.take_proof();
        buggify_drop_hints(&mut steps);
        steps
    });
    let s = sat.stats();
    stats.conflicts = s.conflicts;
    stats.decisions = s.decisions;
    stats.propagations = s.propagations;
    stats.restarts = s.restarts;
    stats.learnts = s.learnts;
    stats.clauses = sat.num_clauses();
    stats.vars = sat.num_vars();
    stats.eliminated_vars = s.eliminated_vars;
    stats.subsumed = s.subsumed;
    stats.strengthened = s.strengthened;
    stats.resolvents = s.resolvents;
    stats.wall = start.elapsed();
    CheckOutcome { result, stats, proof }
}

/// Proves `goal` under `assumptions`: checks that `assumptions ∧ ¬goal` is
/// unsatisfiable.
pub fn verify(assumptions: &[SBool], goal: SBool) -> VerifyResult {
    verify_with(SolverConfig::default(), assumptions, goal)
}

/// [`verify`] with an explicit configuration.
pub fn verify_with(cfg: SolverConfig, assumptions: &[SBool], goal: SBool) -> VerifyResult {
    verify_full(cfg, assumptions, goal, None).result
}

/// [`verify`] with an explicit configuration, an optional cooperative
/// interrupt flag, and full statistics reporting.
pub fn verify_full(
    cfg: SolverConfig,
    assumptions: &[SBool],
    goal: SBool,
    interrupt: Option<Arc<AtomicBool>>,
) -> VerifyOutcome {
    let mut q: Vec<SBool> = assumptions.to_vec();
    q.push(!goal);
    let out = check_full(cfg, &q, interrupt);
    let result = match out.result {
        CheckResult::Unsat => VerifyResult::Proved,
        CheckResult::Sat(m) => VerifyResult::Counterexample(m),
        CheckResult::Unknown => VerifyResult::Unknown,
        CheckResult::Interrupted => VerifyResult::Interrupted,
    };
    VerifyOutcome { result, stats: out.stats }
}

/// Builds a [`Model`] for the symbolic constants reachable from `roots`.
pub(crate) fn extract_model(
    blaster: &Blaster,
    sat: &Solver,
    roots: impl Iterator<Item = TermId>,
) -> Model {
    let mut model = Model::default();
    // Walk the DAG for variable leaves.
    let mut seen: HashSet<TermId> = HashSet::new();
    let mut stack: Vec<TermId> = roots.collect();
    while let Some(t) = stack.pop() {
        if !seen.insert(t) {
            continue;
        }
        let (is_var, children, sort) = with_ctx(|c| {
            let n = c.term(t);
            (matches!(n.op, Op::Var(_)), n.children.clone(), n.sort)
        });
        if is_var {
            match sort {
                Sort::Bool => {
                    if let Some(v) = blaster.read_bool(sat, t) {
                        model.set_bool(t, v);
                    }
                }
                Sort::BitVec(_) => {
                    if let Some(v) = blaster.read_bv(sat, t) {
                        model.set_bv(t, v);
                    }
                }
            }
        }
        stack.extend(children);
    }
    // UF interpretations from the Ackermann expansion (cone apps only —
    // in a session, retired goals' apps may be only partially assigned).
    for (uf, args, result) in blaster.read_uf_apps(sat, &seen) {
        model.uf_tables.entry(uf).or_default().insert(args, result);
    }
    model
}
