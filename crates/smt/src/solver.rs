//! `check` / `verify` entry points: term-level queries end-to-end.
//!
//! Each call builds a fresh SAT instance, blasts the assertions, finalizes
//! uninterpreted functions, solves, and (for satisfiable queries) extracts
//! a [`Model`] over exactly the symbolic constants appearing in the query.

use crate::blast::Blaster;
use crate::bv::SBool;
use crate::model::Model;
use crate::term::{with_ctx, Op, Sort, TermId};
use serval_sat::{SolveResult, Solver};
use std::collections::HashSet;

/// Configuration for a solver call.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverConfig {
    /// Abort with `Unknown` after this many SAT conflicts. Serval's
    /// evaluation uses this to demonstrate that proofs without symbolic
    /// optimizations time out (paper §6.4).
    pub conflict_budget: Option<u64>,
}

/// Result of a satisfiability check.
#[derive(Debug)]
pub enum CheckResult {
    /// Satisfiable, with a model.
    Sat(Box<Model>),
    /// Unsatisfiable.
    Unsat,
    /// Budget exhausted.
    Unknown,
}

/// Result of a verification query.
#[derive(Debug)]
pub enum VerifyResult {
    /// The goal holds under the assumptions.
    Proved,
    /// The goal fails; the model is a counterexample.
    Counterexample(Box<Model>),
    /// Budget exhausted.
    Unknown,
}

impl VerifyResult {
    /// Whether the query was proved.
    pub fn is_proved(&self) -> bool {
        matches!(self, VerifyResult::Proved)
    }
}

/// Checks the conjunction of `assertions` for satisfiability.
pub fn check(assertions: &[SBool]) -> CheckResult {
    check_with(SolverConfig::default(), assertions)
}

/// [`check`] with an explicit configuration.
pub fn check_with(cfg: SolverConfig, assertions: &[SBool]) -> CheckResult {
    let mut sat = Solver::new();
    sat.set_conflict_budget(cfg.conflict_budget);
    let mut blaster = Blaster::new();
    for a in assertions {
        // Fast path: a constant-false assertion needs no solving.
        if a.is_false() {
            return CheckResult::Unsat;
        }
        blaster.assert_true(&mut sat, a.0);
    }
    blaster.finalize(&mut sat);
    match sat.solve() {
        SolveResult::Unsat => CheckResult::Unsat,
        SolveResult::Unknown => CheckResult::Unknown,
        SolveResult::Sat => {
            let model = extract_model(&blaster, &sat, assertions.iter().map(|a| a.0));
            CheckResult::Sat(Box::new(model))
        }
    }
}

/// Proves `goal` under `assumptions`: checks that `assumptions ∧ ¬goal` is
/// unsatisfiable.
pub fn verify(assumptions: &[SBool], goal: SBool) -> VerifyResult {
    verify_with(SolverConfig::default(), assumptions, goal)
}

/// [`verify`] with an explicit configuration.
pub fn verify_with(cfg: SolverConfig, assumptions: &[SBool], goal: SBool) -> VerifyResult {
    let mut q: Vec<SBool> = assumptions.to_vec();
    q.push(!goal);
    match check_with(cfg, &q) {
        CheckResult::Unsat => VerifyResult::Proved,
        CheckResult::Sat(m) => VerifyResult::Counterexample(m),
        CheckResult::Unknown => VerifyResult::Unknown,
    }
}

/// Builds a [`Model`] for the symbolic constants reachable from `roots`.
fn extract_model(
    blaster: &Blaster,
    sat: &Solver,
    roots: impl Iterator<Item = TermId>,
) -> Model {
    let mut model = Model::default();
    // Walk the DAG for variable leaves.
    let mut seen: HashSet<TermId> = HashSet::new();
    let mut stack: Vec<TermId> = roots.collect();
    while let Some(t) = stack.pop() {
        if !seen.insert(t) {
            continue;
        }
        let (is_var, children, sort) = with_ctx(|c| {
            let n = c.term(t);
            (matches!(n.op, Op::Var(_)), n.children.clone(), n.sort)
        });
        if is_var {
            match sort {
                Sort::Bool => {
                    if let Some(v) = blaster.read_bool(sat, t) {
                        model.set_bool(t, v);
                    }
                }
                Sort::BitVec(_) => {
                    if let Some(v) = blaster.read_bv(sat, t) {
                        model.set_bv(t, v);
                    }
                }
            }
        }
        stack.extend(children);
    }
    // UF interpretations from the Ackermann expansion.
    for (uf, args, result) in blaster.read_uf_apps(sat) {
        model.uf_tables.entry(uf).or_default().insert(args, result);
    }
    model
}
