//! An SMT layer for the quantifier-free theory of fixed-width bitvectors
//! with uninterpreted functions (QF_UFBV).
//!
//! The original Serval relies on Rosette to compile symbolic values to SMT
//! constraints and on Z3 to discharge them. This crate plays both roles for
//! the decidable fragment Serval's specification library permits (paper
//! §3.1): booleans, bitvectors, uninterpreted functions, and quantifiers
//! over finite domains (which the layer above unrolls).
//!
//! Architecture:
//!
//! - [`term`]: a hash-consed term DAG with a thread-local context.
//! - [`build`]: smart constructors performing aggressive simplification and
//!   constant folding — the analogue of Rosette's partial evaluation.
//! - [`bv`]: ergonomic [`BV`] / [`SBool`] wrappers with operator
//!   overloading, used pervasively by the instruction-set interpreters.
//! - [`blast`]: a Tseitin bit-blaster lowering assertions to CNF for the
//!   `serval-sat` CDCL solver, with Ackermann expansion for uninterpreted
//!   functions.
//! - [`model`]: satisfying assignments mapped back to term-level values
//!   (counterexamples, paper §3.1).
//! - [`solver`]: `check` / `verify` entry points.
//! - [`session`]: incremental discharge sessions — one live solver and
//!   blaster answering a stream of goals under a shared assumption set,
//!   with per-goal activation literals and learnt-clause reuse.
//! - [`presolve`]: a word-level query-simplification pipeline (equality
//!   substitution, known-bits/interval dataflow, assumption-guided
//!   constant propagation, cone-of-influence reduction) run on
//!   `(assumptions, goal)` queries before normalization and blasting.
//!
//! # Examples
//!
//! ```
//! use serval_smt::{BV, reset_ctx, verify, VerifyResult};
//!
//! reset_ctx();
//! let x = BV::fresh(32, "x");
//! // x & 1 is 0 or 1, so (x & 1) <= 1 must hold.
//! let goal = (x & BV::lit(32, 1)).ule(BV::lit(32, 1));
//! assert!(matches!(verify(&[], goal), VerifyResult::Proved));
//! ```

pub mod blast;
pub mod build;
pub mod bv;
pub mod model;
pub mod presolve;
pub mod semantics;
pub mod session;
pub mod solver;
pub mod term;

pub use bv::{SBool, BV};
pub use model::Model;
pub use serval_sat::Rephase;
pub use session::{Session, SessionOutcome, SessionProof};
pub use solver::{
    check, check_full, check_full_proof, verify, verify_full, CheckOutcome, CheckResult,
    QueryStats, SolverConfig, VerifyOutcome, VerifyResult,
};
pub use term::{reset_ctx, with_ctx, Sort, TermId, UfId};

#[cfg(test)]
mod tests;
