//! Tseitin bit-blasting of the term DAG to CNF.
//!
//! Each bitvector term becomes a vector of SAT literals (LSB first); each
//! boolean term becomes a single literal. The traversal is iterative and
//! memoized, so shared subterms are encoded once and arbitrarily deep DAGs
//! (long straight-line machine-code runs) do not overflow the stack.
//!
//! Uninterpreted functions are eliminated by Ackermann expansion: each
//! syntactically distinct application gets fresh result literals, and for
//! every pair of applications of the same function a congruence constraint
//! `args equal → results equal` is added in [`Blaster::finalize`].
//!
//! # Polarity-aware encoding (Plaisted–Greenbaum)
//!
//! With [`Blaster::set_polarity`] enabled, gate definition clauses are not
//! written to the solver eagerly. Each gate registers two clause buckets:
//! *forward* (clauses containing the negated output, constraining the
//! definition when the output is true) and *backward* (clauses containing
//! the positive output). A use of the output literal in some emitted
//! clause pulls in only the bucket for that polarity, and the literals of
//! the emitted clauses are themselves uses, so exactly the reachable
//! polarity cone materializes. Single-polarity gates — the common case in
//! verification-condition CNF, where the root is asserted one way — emit
//! half their clauses, and gates of unreachable polarity emit nothing.
//!
//! Satisfying assignments of the reduced CNF still extend to the full
//! Tseitin encoding: an unemitted direction only ever relaxes a gate
//! output, which can be fixed by evaluating the gate's semantics over its
//! (fully constrained) inputs.

use crate::term::{mask, Op, Sort, TermId, UfId};
use crate::with_ctx;
use serval_sat::{Lit, Solver, Var};
use std::collections::{HashMap, HashSet};

/// Pending definition clauses of one Tseitin gate, bucketed by the output
/// polarity that needs them (see the module docs).
struct Gate {
    /// Clauses containing the *negated* output: `out → definition`.
    fwd: Vec<Vec<Lit>>,
    /// Clauses containing the *positive* output: `definition → out`.
    bwd: Vec<Vec<Lit>>,
    /// Bit 1: fwd emitted; bit 2: bwd emitted.
    emitted: u8,
}

/// Incremental bit-blaster writing clauses into a [`serval_sat::Solver`].
pub struct Blaster {
    bool_map: HashMap<TermId, Lit>,
    bv_map: HashMap<TermId, Vec<Lit>>,
    lit_true: Option<Lit>,
    /// Per-UF list of `(argument bits, result bits)` for Ackermann.
    uf_apps: HashMap<UfId, Vec<(TermId, Vec<Vec<Lit>>, Vec<Lit>)>>,
    /// Number of congruence pairs already emitted per UF (supports
    /// incremental finalize).
    uf_done: HashMap<UfId, usize>,
    /// Memoized restoring-division circuits, keyed by the operand term
    /// pair: `udiv` and `urem` of the same operands (the ubiquitous
    /// `q*b + r == a` pattern) share one gate instead of blasting two.
    divrem: HashMap<(TermId, TermId), (Vec<Lit>, Vec<Lit>)>,
    /// Per-term SAT-variable range `[lo, hi)` allocated while encoding
    /// that term (children excluded — they are encoded first). Feeds
    /// [`Blaster::mark_cone_vars`], the decision-scope computation for
    /// incremental sessions.
    var_range: HashMap<TermId, (u32, u32)>,
    /// Terms whose encodings share SAT variables: `bvudiv`/`bvurem` of
    /// the same operands share one divider circuit, allocated inside the
    /// *first* encoder's variable range. A session must not purge one
    /// partner's variables while another is still live.
    coupled: HashMap<TermId, Vec<TermId>>,
    /// First term to encode each `divrem` circuit (the range owner).
    divrem_owner: HashMap<(TermId, TermId), TermId>,
    /// Plaisted–Greenbaum registry: gate output var → pending definition
    /// clauses. Only populated when `polarity` is on.
    gates: HashMap<Var, Gate>,
    /// Whether to defer gate clauses by polarity (see the module docs).
    polarity: bool,
}

impl Default for Blaster {
    fn default() -> Self {
        Self::new()
    }
}

impl Blaster {
    /// Creates an empty blaster.
    pub fn new() -> Blaster {
        Blaster {
            bool_map: HashMap::new(),
            bv_map: HashMap::new(),
            lit_true: None,
            uf_apps: HashMap::new(),
            uf_done: HashMap::new(),
            divrem: HashMap::new(),
            var_range: HashMap::new(),
            coupled: HashMap::new(),
            divrem_owner: HashMap::new(),
            gates: HashMap::new(),
            polarity: false,
        }
    }

    /// Enables or disables Plaisted–Greenbaum polarity-aware encoding.
    /// Must be called before the first term is blasted; toggling
    /// mid-encoding would strand already-registered gate buckets.
    pub fn set_polarity(&mut self, on: bool) {
        debug_assert!(
            self.bool_map.is_empty() && self.bv_map.is_empty(),
            "set_polarity after encoding started"
        );
        self.polarity = on;
    }

    /// Registers (or, with polarity analysis off, immediately emits) the
    /// definition clauses of a gate with output variable `out`.
    fn define_gate(&mut self, sat: &mut Solver, out: Var, clauses: &[&[Lit]]) {
        if !self.polarity {
            for c in clauses {
                sat.add_clause(c);
            }
            return;
        }
        let mut fwd = Vec::new();
        let mut bwd = Vec::new();
        for c in clauses {
            let negated_out = c.iter().any(|l| l.var() == out && l.is_neg());
            if negated_out {
                fwd.push(c.to_vec());
            } else {
                bwd.push(c.to_vec());
            }
        }
        self.gates.insert(out, Gate { fwd, bwd, emitted: 0 });
    }

    /// Records that literal `l` occurs in an emitted clause, flushing the
    /// matching definition bucket of its gate (and, transitively, of every
    /// gate whose output appears in those clauses). A no-op for input
    /// variables and with polarity analysis off.
    pub fn use_lit(&mut self, sat: &mut Solver, l: Lit) {
        if !self.polarity {
            return;
        }
        let mut work = vec![l];
        while let Some(l) = work.pop() {
            let v = l.var();
            let Some(gate) = self.gates.get_mut(&v) else {
                continue;
            };
            let bit = if l.is_neg() { 2 } else { 1 };
            if gate.emitted & bit != 0 {
                continue;
            }
            gate.emitted |= bit;
            let bucket = if l.is_neg() {
                std::mem::take(&mut gate.bwd)
            } else {
                std::mem::take(&mut gate.fwd)
            };
            for c in bucket {
                sat.add_clause(&c);
                for &x in &c {
                    if x.var() != v {
                        work.push(x);
                    }
                }
            }
        }
    }

    /// Adds a non-definition clause (an assertion, guard, or congruence
    /// constraint), first flushing the gate directions its literals need.
    fn emit_clause(&mut self, sat: &mut Solver, lits: &[Lit]) {
        for &l in lits {
            self.use_lit(sat, l);
        }
        sat.add_clause(lits);
    }

    /// Terms that share allocated SAT variables with `t` (see
    /// [`Blaster::coupled`]); empty for almost every term.
    pub fn coupled_terms(&self, t: TermId) -> &[TermId] {
        self.coupled.get(&t).map_or(&[], Vec::as_slice)
    }

    /// Forgets a purged term's encoding: the memoized literals, the
    /// variable range, and any division circuit the term owns are
    /// dropped, so a later re-mention re-encodes the term with fresh
    /// variables instead of handing out gate literals whose defining
    /// clauses were purged (which would leave the goal unconstrained).
    /// Ackermann application records and polarity gate buckets are
    /// deliberately kept: re-emitting them only ever adds conservative
    /// constraints over now-unconstrained variables.
    pub fn forget_term(&mut self, t: TermId) {
        self.bool_map.remove(&t);
        self.bv_map.remove(&t);
        self.var_range.remove(&t);
        self.coupled.remove(&t);
        let owned: Vec<(TermId, TermId)> = self
            .divrem_owner
            .iter()
            .filter_map(|(&k, &o)| (o == t).then_some(k))
            .collect();
        for k in owned {
            self.divrem.remove(&k);
            self.divrem_owner.remove(&k);
        }
    }

    /// Marks the SAT variables allocated while encoding exactly `t`
    /// (children excluded). Returns whether anything was marked.
    pub fn mark_term_vars(&self, t: TermId, mask: &mut [bool]) -> bool {
        let Some(&(lo, hi)) = self.var_range.get(&t) else {
            return false;
        };
        let hi = (hi as usize).min(mask.len());
        for m in &mut mask[(lo as usize).min(hi)..hi] {
            *m = true;
        }
        hi > lo as usize
    }

    /// Marks in `mask` every SAT variable allocated while encoding a
    /// term reachable from `roots`; `visited` carries the walk's memo so
    /// a session can seed it with the base cone once and extend it per
    /// goal. Variables past `mask.len()` are ignored.
    ///
    /// Auxiliary variables not tied to a term (Ackermann congruence
    /// circuits, the constant-true literal, activation literals) are
    /// deliberately left unmarked: they are either assigned at level 0
    /// or functionally determined by unit propagation once their inputs
    /// are, so the decision scope never needs to branch on them.
    pub fn mark_cone_vars(
        &self,
        roots: impl Iterator<Item = TermId>,
        visited: &mut HashSet<TermId>,
        mask: &mut [bool],
    ) {
        self.mark_cone_vars_skipping(roots, visited, &HashSet::new(), mask)
    }

    /// [`Blaster::mark_cone_vars`] with a read-only `skip` set: terms in
    /// `skip` are treated as already visited without mutating it. Lets a
    /// session walk each goal's cone against the (large, fixed) base
    /// cone without cloning the base memo per goal.
    pub fn mark_cone_vars_skipping(
        &self,
        roots: impl Iterator<Item = TermId>,
        visited: &mut HashSet<TermId>,
        skip: &HashSet<TermId>,
        mask: &mut [bool],
    ) {
        let mut stack: Vec<TermId> = roots
            .filter(|&t| !skip.contains(&t) && visited.insert(t))
            .collect();
        while let Some(t) = stack.pop() {
            if let Some(&(lo, hi)) = self.var_range.get(&t) {
                for i in (lo as usize)..(hi as usize).min(mask.len()) {
                    mask[i] = true;
                }
            }
            with_ctx(|c| {
                for &ch in &c.term(t).children {
                    if !skip.contains(&ch) && visited.insert(ch) {
                        stack.push(ch);
                    }
                }
            });
        }
    }

    /// Asserts boolean term `t` (adds clauses making it true).
    pub fn assert_true(&mut self, sat: &mut Solver, t: TermId) {
        let l = self.lit_of(sat, t);
        self.emit_clause(sat, &[l]);
    }

    /// The literal encoding boolean term `t`.
    pub fn lit_of(&mut self, sat: &mut Solver, t: TermId) -> Lit {
        self.ensure(sat, t);
        self.bool_map[&t]
    }

    /// The literal vector (LSB first) encoding bitvector term `t`.
    pub fn bits_of(&mut self, sat: &mut Solver, t: TermId) -> Vec<Lit> {
        self.ensure(sat, t);
        self.bv_map[&t].clone()
    }

    /// Emits pending Ackermann congruence constraints. Must be called after
    /// the last `assert_true` and before solving.
    pub fn finalize(&mut self, sat: &mut Solver) {
        let ufs: Vec<UfId> = self.uf_apps.keys().copied().collect();
        for uf in ufs {
            let apps = self.uf_apps[&uf].clone();
            let start = *self.uf_done.get(&uf).unwrap_or(&0);
            for i in 0..apps.len() {
                // Only emit pairs involving at least one new application.
                for j in (i + 1).max(start)..apps.len() {
                    self.congruence(sat, &apps[i], &apps[j]);
                }
            }
            self.uf_done.insert(uf, apps.len());
        }
    }

    /// `args_i == args_j → result_i == result_j`.
    fn congruence(
        &mut self,
        sat: &mut Solver,
        a: &(TermId, Vec<Vec<Lit>>, Vec<Lit>),
        b: &(TermId, Vec<Vec<Lit>>, Vec<Lit>),
    ) {
        // all_eq literal: conjunction of per-argument equalities.
        let mut arg_eqs = Vec::new();
        for (x, y) in a.1.iter().zip(&b.1) {
            arg_eqs.push(self.eq_gate(sat, x, y));
        }
        let all_eq = self.and_many(sat, &arg_eqs);
        // all_eq → result bits equal.
        for (&r1, &r2) in a.2.iter().zip(&b.2) {
            self.emit_clause(sat, &[!all_eq, !r1, r2]);
            self.emit_clause(sat, &[!all_eq, r1, !r2]);
        }
    }

    // ------------------------------------------------------------------
    // Traversal
    // ------------------------------------------------------------------

    fn done(&self, t: TermId) -> bool {
        self.bool_map.contains_key(&t) || self.bv_map.contains_key(&t)
    }

    fn ensure(&mut self, sat: &mut Solver, root: TermId) {
        if self.done(root) {
            return;
        }
        let mut stack = vec![root];
        while let Some(&t) = stack.last() {
            if self.done(t) {
                stack.pop();
                continue;
            }
            let children = with_ctx(|c| c.term(t).children.clone());
            let pending: Vec<TermId> =
                children.iter().copied().filter(|&c| !self.done(c)).collect();
            if pending.is_empty() {
                self.encode(sat, t);
                stack.pop();
            } else {
                stack.extend(pending);
            }
        }
    }

    fn encode(&mut self, sat: &mut Solver, t: TermId) {
        let (op, children, sort) = with_ctx(|c| {
            let n = c.term(t);
            (n.op.clone(), n.children.clone(), n.sort)
        });
        let lo = sat.num_vars() as u32;
        match sort {
            Sort::Bool => {
                let l = self.encode_bool(sat, &op, &children);
                self.bool_map.insert(t, l);
            }
            Sort::BitVec(w) => {
                let bits = self.encode_bv(sat, t, &op, &children, w);
                debug_assert_eq!(bits.len(), w as usize);
                self.bv_map.insert(t, bits);
            }
        }
        let hi = sat.num_vars() as u32;
        if hi > lo {
            self.var_range.insert(t, (lo, hi));
        }
    }

    fn encode_bool(&mut self, sat: &mut Solver, op: &Op, ch: &[TermId]) -> Lit {
        match op {
            Op::BoolConst(b) => {
                let tl = self.true_lit(sat);
                if *b {
                    tl
                } else {
                    !tl
                }
            }
            Op::Var(_) => Lit::pos(sat.new_var()),
            Op::Not => !self.bool_map[&ch[0]],
            Op::And => {
                let (a, b) = (self.bool_map[&ch[0]], self.bool_map[&ch[1]]);
                self.and_gate(sat, a, b)
            }
            Op::Or => {
                let (a, b) = (self.bool_map[&ch[0]], self.bool_map[&ch[1]]);
                self.or_gate(sat, a, b)
            }
            Op::Xor => {
                let (a, b) = (self.bool_map[&ch[0]], self.bool_map[&ch[1]]);
                self.xor_gate(sat, a, b)
            }
            Op::Iff => {
                let (a, b) = (self.bool_map[&ch[0]], self.bool_map[&ch[1]]);
                !self.xor_gate(sat, a, b)
            }
            Op::IteBool => {
                let (c, a, b) = (
                    self.bool_map[&ch[0]],
                    self.bool_map[&ch[1]],
                    self.bool_map[&ch[2]],
                );
                self.mux_gate(sat, c, a, b)
            }
            Op::Eq => {
                let a = self.bv_map[&ch[0]].clone();
                let b = self.bv_map[&ch[1]].clone();
                self.eq_gate(sat, &a, &b)
            }
            Op::Ult => {
                let a = self.bv_map[&ch[0]].clone();
                let b = self.bv_map[&ch[1]].clone();
                self.ult_gate(sat, &a, &b)
            }
            Op::Ule => {
                let a = self.bv_map[&ch[0]].clone();
                let b = self.bv_map[&ch[1]].clone();
                let gt = self.ult_gate(sat, &b, &a);
                !gt
            }
            Op::Slt => {
                let a = self.flip_msb(self.bv_map[&ch[0]].clone());
                let b = self.flip_msb(self.bv_map[&ch[1]].clone());
                self.ult_gate(sat, &a, &b)
            }
            Op::Sle => {
                let a = self.flip_msb(self.bv_map[&ch[0]].clone());
                let b = self.flip_msb(self.bv_map[&ch[1]].clone());
                let gt = self.ult_gate(sat, &b, &a);
                !gt
            }
            _ => unreachable!("not a bool op: {op:?}"),
        }
    }

    fn encode_bv(
        &mut self,
        sat: &mut Solver,
        t: TermId,
        op: &Op,
        ch: &[TermId],
        w: u32,
    ) -> Vec<Lit> {
        let w = w as usize;
        match op {
            Op::BvConst(v) => {
                let tl = self.true_lit(sat);
                (0..w)
                    .map(|i| if v >> i & 1 == 1 { tl } else { !tl })
                    .collect()
            }
            Op::Var(_) => (0..w).map(|_| Lit::pos(sat.new_var())).collect(),
            Op::BvNot => self.bv_map[&ch[0]].iter().map(|&l| !l).collect(),
            Op::BvNeg => {
                let a: Vec<Lit> = self.bv_map[&ch[0]].iter().map(|&l| !l).collect();
                let one = self.const_bits(sat, w, 1);
                self.add_gate(sat, &a, &one, None)
            }
            Op::BvAdd => {
                let a = self.bv_map[&ch[0]].clone();
                let b = self.bv_map[&ch[1]].clone();
                self.add_gate(sat, &a, &b, None)
            }
            Op::BvSub => {
                let a = self.bv_map[&ch[0]].clone();
                let b: Vec<Lit> = self.bv_map[&ch[1]].iter().map(|&l| !l).collect();
                let tl = self.true_lit(sat);
                self.add_gate(sat, &a, &b, Some(tl))
            }
            Op::BvMul => {
                let a = self.bv_map[&ch[0]].clone();
                let b = self.bv_map[&ch[1]].clone();
                self.mul_gate(sat, &a, &b)
            }
            Op::BvUdiv => {
                let b = self.bv_map[&ch[1]].clone();
                let (q, _r) = self.divrem_of(sat, t, ch[0], ch[1]);
                // Division by zero yields all ones.
                let bz = self.is_zero_gate(sat, &b);
                let tl = self.true_lit(sat);
                let ones = vec![tl; w];
                self.mux_bits(sat, bz, &ones, &q)
            }
            Op::BvUrem => {
                let a = self.bv_map[&ch[0]].clone();
                let b = self.bv_map[&ch[1]].clone();
                let (_q, r) = self.divrem_of(sat, t, ch[0], ch[1]);
                // Remainder by zero yields the dividend.
                let bz = self.is_zero_gate(sat, &b);
                self.mux_bits(sat, bz, &a, &r)
            }
            Op::BvAnd => self.bitwise(sat, ch, |s, me, a, b| me.and_gate(s, a, b)),
            Op::BvOr => self.bitwise(sat, ch, |s, me, a, b| me.or_gate(s, a, b)),
            Op::BvXor => self.bitwise(sat, ch, |s, me, a, b| me.xor_gate(s, a, b)),
            Op::BvShl => self.shift_gate(sat, ch, ShiftKind::Left),
            Op::BvLshr => self.shift_gate(sat, ch, ShiftKind::LogicalRight),
            Op::BvAshr => self.shift_gate(sat, ch, ShiftKind::ArithRight),
            Op::Concat => {
                let hi = self.bv_map[&ch[0]].clone();
                let lo = self.bv_map[&ch[1]].clone();
                let mut bits = lo;
                bits.extend(hi);
                bits
            }
            Op::Extract(hi, lo) => {
                let a = &self.bv_map[&ch[0]];
                a[*lo as usize..=*hi as usize].to_vec()
            }
            Op::ZeroExt => {
                let a = self.bv_map[&ch[0]].clone();
                let tl = self.true_lit(sat);
                let mut bits = a;
                while bits.len() < w {
                    bits.push(!tl);
                }
                bits
            }
            Op::SignExt => {
                let a = self.bv_map[&ch[0]].clone();
                let sign = *a.last().expect("sext of empty bv");
                let mut bits = a;
                while bits.len() < w {
                    bits.push(sign);
                }
                bits
            }
            Op::IteBv => {
                let c = self.bool_map[&ch[0]];
                let a = self.bv_map[&ch[1]].clone();
                let b = self.bv_map[&ch[2]].clone();
                self.mux_bits(sat, c, &a, &b)
            }
            Op::UfApply(uf) => {
                let args: Vec<Vec<Lit>> = ch.iter().map(|c| self.bv_map[c].clone()).collect();
                let result: Vec<Lit> = (0..w).map(|_| Lit::pos(sat.new_var())).collect();
                self.uf_apps
                    .entry(*uf)
                    .or_default()
                    .push((t, args, result.clone()));
                result
            }
            _ => unreachable!("not a bv op: {op:?}"),
        }
    }

    // ------------------------------------------------------------------
    // Gate primitives
    // ------------------------------------------------------------------

    fn true_lit(&mut self, sat: &mut Solver) -> Lit {
        if let Some(l) = self.lit_true {
            return l;
        }
        let l = Lit::pos(sat.new_var());
        sat.add_clause(&[l]);
        self.lit_true = Some(l);
        l
    }

    fn is_const(&self, l: Lit) -> Option<bool> {
        self.lit_true.map(|t| {
            if l == t {
                Some(true)
            } else if l == !t {
                Some(false)
            } else {
                None
            }
        })?
    }

    fn and_gate(&mut self, sat: &mut Solver, a: Lit, b: Lit) -> Lit {
        match (self.is_const(a), self.is_const(b)) {
            (Some(false), _) | (_, Some(false)) => return !self.true_lit(sat),
            (Some(true), _) => return b,
            (_, Some(true)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        if a == !b {
            return !self.true_lit(sat);
        }
        let c = Lit::pos(sat.new_var());
        self.define_gate(sat, c.var(), &[&[!c, a], &[!c, b], &[c, !a, !b]]);
        c
    }

    fn or_gate(&mut self, sat: &mut Solver, a: Lit, b: Lit) -> Lit {
        let c = self.and_gate(sat, !a, !b);
        !c
    }

    fn xor_gate(&mut self, sat: &mut Solver, a: Lit, b: Lit) -> Lit {
        match (self.is_const(a), self.is_const(b)) {
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            (Some(true), _) => return !b,
            (_, Some(true)) => return !a,
            _ => {}
        }
        if a == b {
            return !self.true_lit(sat);
        }
        if a == !b {
            return self.true_lit(sat);
        }
        let c = Lit::pos(sat.new_var());
        self.define_gate(
            sat,
            c.var(),
            &[&[!c, a, b], &[!c, !a, !b], &[c, !a, b], &[c, a, !b]],
        );
        c
    }

    fn mux_gate(&mut self, sat: &mut Solver, c: Lit, t: Lit, e: Lit) -> Lit {
        match self.is_const(c) {
            Some(true) => return t,
            Some(false) => return e,
            None => {}
        }
        if t == e {
            return t;
        }
        let o = Lit::pos(sat.new_var());
        self.define_gate(
            sat,
            o.var(),
            &[&[!c, !t, o], &[!c, t, !o], &[c, !e, o], &[c, e, !o]],
        );
        o
    }

    fn and_many(&mut self, sat: &mut Solver, ls: &[Lit]) -> Lit {
        let mut acc = self.true_lit(sat);
        for &l in ls {
            acc = self.and_gate(sat, acc, l);
        }
        acc
    }

    fn eq_gate(&mut self, sat: &mut Solver, a: &[Lit], b: &[Lit]) -> Lit {
        debug_assert_eq!(a.len(), b.len());
        let mut eqs = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let ne = self.xor_gate(sat, x, y);
            eqs.push(!ne);
        }
        self.and_many(sat, &eqs)
    }

    fn is_zero_gate(&mut self, sat: &mut Solver, a: &[Lit]) -> Lit {
        let neg: Vec<Lit> = a.iter().map(|&l| !l).collect();
        self.and_many(sat, &neg)
    }

    /// `a < b` unsigned: borrow chain from LSB.
    fn ult_gate(&mut self, sat: &mut Solver, a: &[Lit], b: &[Lit]) -> Lit {
        debug_assert_eq!(a.len(), b.len());
        let mut lt = !self.true_lit(sat);
        for (&x, &y) in a.iter().zip(b) {
            // lt' = (¬x ∧ y) ∨ ((x ↔ y) ∧ lt).
            let xltb = {
                let nx = !x;
                self.and_gate(sat, nx, y)
            };
            let same = {
                let ne = self.xor_gate(sat, x, y);
                !ne
            };
            let keep = self.and_gate(sat, same, lt);
            lt = self.or_gate(sat, xltb, keep);
        }
        lt
    }

    fn flip_msb(&self, mut bits: Vec<Lit>) -> Vec<Lit> {
        let n = bits.len();
        bits[n - 1] = !bits[n - 1];
        bits
    }

    fn add_gate(
        &mut self,
        sat: &mut Solver,
        a: &[Lit],
        b: &[Lit],
        carry_in: Option<Lit>,
    ) -> Vec<Lit> {
        debug_assert_eq!(a.len(), b.len());
        let mut carry = carry_in.unwrap_or_else(|| !self.true_lit(sat));
        let mut out = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let xy = self.xor_gate(sat, x, y);
            let s = self.xor_gate(sat, xy, carry);
            // carry' = (x ∧ y) ∨ (carry ∧ (x ⊕ y)).
            let c1 = self.and_gate(sat, x, y);
            let c2 = self.and_gate(sat, carry, xy);
            carry = self.or_gate(sat, c1, c2);
            out.push(s);
        }
        out
    }

    fn mul_gate(&mut self, sat: &mut Solver, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let fl = !self.true_lit(sat);
        let mut acc = vec![fl; w];
        for i in 0..w {
            // Partial product: (a << i) AND b[i].
            let mut pp = vec![fl; w];
            for j in 0..w - i {
                pp[i + j] = self.and_gate(sat, a[j], b[i]);
            }
            acc = self.add_gate(sat, &acc, &pp, None);
        }
        acc
    }

    fn mux_bits(&mut self, sat: &mut Solver, c: Lit, t: &[Lit], e: &[Lit]) -> Vec<Lit> {
        t.iter()
            .zip(e)
            .map(|(&x, &y)| self.mux_gate(sat, c, x, y))
            .collect()
    }

    /// The memoized division circuit for operand terms `(ta, tb)`: the
    /// quotient and remainder of `bvudiv`/`bvurem` are two outputs of
    /// one [`Blaster::divrem_gate`], so encoding both of the same
    /// operand pair costs one circuit, not two.
    fn divrem_of(
        &mut self,
        sat: &mut Solver,
        t: TermId,
        ta: TermId,
        tb: TermId,
    ) -> (Vec<Lit>, Vec<Lit>) {
        if let Some(qr) = self.divrem.get(&(ta, tb)) {
            // `t` reuses the circuit allocated inside the owner's range:
            // record the coupling so retirement waits for both.
            let owner = self.divrem_owner[&(ta, tb)];
            if owner != t {
                self.coupled.entry(owner).or_default().push(t);
                self.coupled.entry(t).or_default().push(owner);
            }
            return qr.clone();
        }
        let a = self.bv_map[&ta].clone();
        let b = self.bv_map[&tb].clone();
        let qr = self.divrem_gate(sat, &a, &b);
        self.divrem.insert((ta, tb), qr.clone());
        self.divrem_owner.insert((ta, tb), t);
        qr
    }

    /// Restoring division: returns `(quotient, remainder)` for `b != 0`;
    /// the caller muxes in the division-by-zero semantics.
    fn divrem_gate(&mut self, sat: &mut Solver, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
        let w = a.len();
        let fl = !self.true_lit(sat);
        // Accumulator has w+1 bits; b is zero-extended to w+1.
        let mut bx: Vec<Lit> = b.to_vec();
        bx.push(fl);
        let mut r: Vec<Lit> = vec![fl; w + 1];
        let mut q: Vec<Lit> = vec![fl; w];
        for i in (0..w).rev() {
            // r = (r << 1) | a[i], still within w+1 bits because the
            // running remainder is < b <= 2^w - 1.
            let mut shifted = Vec::with_capacity(w + 1);
            shifted.push(a[i]);
            shifted.extend_from_slice(&r[..w]);
            r = shifted;
            // ge = r >= b.
            let lt = self.ult_gate(sat, &r, &bx);
            let ge = !lt;
            q[i] = ge;
            // r = ge ? r - b : r.
            let nb: Vec<Lit> = bx.iter().map(|&l| !l).collect();
            let tl = self.true_lit(sat);
            let sub = self.add_gate(sat, &r, &nb, Some(tl));
            r = self.mux_bits(sat, ge, &sub, &r);
        }
        (q, r[..w].to_vec())
    }

    fn bitwise(
        &mut self,
        sat: &mut Solver,
        ch: &[TermId],
        f: impl Fn(&mut Solver, &mut Self, Lit, Lit) -> Lit,
    ) -> Vec<Lit> {
        let a = self.bv_map[&ch[0]].clone();
        let b = self.bv_map[&ch[1]].clone();
        a.iter()
            .zip(&b)
            .map(|(&x, &y)| f(sat, self, x, y))
            .collect()
    }

    fn shift_gate(&mut self, sat: &mut Solver, ch: &[TermId], kind: ShiftKind) -> Vec<Lit> {
        let a = self.bv_map[&ch[0]].clone();
        let amt = self.bv_map[&ch[1]].clone();
        let w = a.len();
        let fl = !self.true_lit(sat);
        let fill = |bits: &[Lit]| match kind {
            ShiftKind::ArithRight => *bits.last().unwrap(),
            _ => fl,
        };
        // Barrel stages for amount bits k with 2^k < w cover all in-range
        // shifts; any higher amount bit forces the "big shift" result.
        let mut cur = a.clone();
        let mut stages = 0;
        while (1usize << stages) < w {
            stages += 1;
        }
        for k in 0..stages.min(amt.len()) {
            let dist = 1usize << k;
            let f = fill(&cur);
            let shifted: Vec<Lit> = match kind {
                ShiftKind::Left => (0..w)
                    .map(|i| if i >= dist { cur[i - dist] } else { fl })
                    .collect(),
                ShiftKind::LogicalRight | ShiftKind::ArithRight => (0..w)
                    .map(|i| if i + dist < w { cur[i + dist] } else { f })
                    .collect(),
            };
            cur = self.mux_bits(sat, amt[k], &shifted, &cur);
        }
        // big = any amount bit at position >= stages.
        let mut big = fl;
        for &l in amt.iter().skip(stages) {
            big = self.or_gate(sat, big, l);
        }
        let f = fill(&a);
        let big_result = vec![f; w];
        self.mux_bits(sat, big, &big_result, &cur)
    }

    fn const_bits(&mut self, sat: &mut Solver, w: usize, v: u128) -> Vec<Lit> {
        let tl = self.true_lit(sat);
        (0..w)
            .map(|i| if mask(w as u32, v) >> i & 1 == 1 { tl } else { !tl })
            .collect()
    }

    /// Reads the model value of bitvector term `t` after a Sat answer.
    /// Returns `None` if `t` was never blasted.
    pub fn read_bv(&self, sat: &Solver, t: TermId) -> Option<u128> {
        let bits = self.bv_map.get(&t)?;
        let mut v = 0u128;
        for (i, &l) in bits.iter().enumerate() {
            if sat.value_lit(l).unwrap_or(false) {
                v |= 1 << i;
            }
        }
        Some(v)
    }

    /// Reads the model value of boolean term `t` after a Sat answer.
    pub fn read_bool(&self, sat: &Solver, t: TermId) -> Option<bool> {
        let l = self.bool_map.get(&t)?;
        Some(sat.value_lit(*l).unwrap_or(false))
    }

    /// The UF applications among `live` terms, with their current model
    /// values: `(uf, arg values, result value)`. Used to build model UF
    /// tables; restricting to the extraction cone matters for sessions,
    /// where a retired goal's application can be left partially assigned
    /// by the decision scope and must not contribute a phantom table row.
    pub fn read_uf_apps(
        &self,
        sat: &Solver,
        live: &HashSet<TermId>,
    ) -> Vec<(UfId, Vec<u128>, u128)> {
        let read = |bits: &[Lit]| {
            let mut v = 0u128;
            for (i, &l) in bits.iter().enumerate() {
                if sat.value_lit(l).unwrap_or(false) {
                    v |= 1 << i;
                }
            }
            v
        };
        let mut out = Vec::new();
        for (&uf, apps) in &self.uf_apps {
            for (t, args, result) in apps {
                if live.contains(t) {
                    out.push((uf, args.iter().map(|a| read(a)).collect(), read(result)));
                }
            }
        }
        out
    }
}

#[derive(Clone, Copy)]
enum ShiftKind {
    Left,
    LogicalRight,
    ArithRight,
}
