//! Word-level presolve: a fixpoint simplification pipeline that shrinks
//! `(assumptions, goal)` queries *before* normalization and bit-blasting.
//!
//! The smart constructors in [`crate::build`] only see one node at a
//! time, so every *global* fact implied by the assumption base — an
//! asserted equality, a range bound on a variable, a boolean assumption
//! deciding an `ite` arm — is otherwise rediscovered bit-by-bit inside
//! CDCL. This module runs four word-level passes to a fixpoint on the
//! hash-consed term DAG:
//!
//! 1. **Equality substitution** — `var = term` / `var = const`
//!    equalities harvested from the assumption conjunction are inlined
//!    through the goal and the remaining assumptions (occurs-checked, so
//!    cyclic equality chains like `x = y+1 ∧ y = x+1` are left alone).
//!    The defining roots are dropped; the recorded *bindings* re-derive
//!    the eliminated variables when a countermodel comes back.
//! 2. **Known-bits / interval dataflow** — a forward abstract
//!    interpretation computing, per term, a known-zero mask, a known-one
//!    mask, and an unsigned range `[lo, hi]`. Decided comparisons
//!    (`ult`/`ule`/`slt`/`sle`/`eq`) fold to constants, which collapses
//!    `ite`s whose conditions they feed; variables the base bounds to a
//!    small range are *narrowed* — replaced by `zext` of a fresh shorter
//!    variable, so the blaster allocates that many fewer SAT variables.
//! 3. **Assumption-guided constant propagation** — each surviving
//!    assumption root is a fact: any *interior* occurrence of it (or of
//!    its negation) elsewhere in the query folds to a constant. Bare
//!    boolean assumptions become `var := true/false` bindings.
//! 4. **Cone-of-influence reduction** ([`cone_split`]) — assumptions
//!    sharing no symbolic constants and no uninterpreted functions
//!    (transitively) with the goal cannot influence an UNSAT verdict and
//!    are split off. UF links count because Ackermann congruence couples
//!    applications of the same function across assumptions.
//!
//! # Soundness
//!
//! Every rewrite is justified by roots that remain asserted (or by
//! recorded bindings): in any model of the simplified query, evaluating
//! the bindings in reverse order extends the model to one of the
//! original query, and conversely every original model satisfies the
//! simplified query. Two rules keep the justification non-circular:
//!
//! - a surviving assumption root is never fact- or dataflow-folded *at
//!   its own top node* ([`rewrite_root`] vs. the interior rewriter), so
//!   a range fact can never delete its own source — `ult(x, 8)` seeds
//!   `x ∈ [0, 7]` but must not then fold itself to `true`;
//! - fact folding matches the *pre-rewrite* id of an interior subterm,
//!   and a strict subterm of a hash-consed term can never equal the
//!   term itself, so a root cannot fold to `true` through its own entry.
//!
//! Cone-of-influence splitting is verdict-preserving for *proved*
//! queries only (removing assumptions can only weaken UNSAT into SAT,
//! never the reverse); a *refuted* reduced query needs the split-off
//! partition checked separately — see [`cone_split`] and the engine's
//! `Refuted` side-solve.
//!
//! # Termination
//!
//! Each round substitutes, then rewrites bottom-up once (memoized). The
//! loop stops when a round changes neither the assumption root set nor
//! any binding, with a hard cap of [`MAX_ROUNDS`] as a backstop.
//! Harvesting strictly shrinks the set of unbound variables, narrowing
//! strictly shrinks a variable's width, and rewriting is a single pass,
//! so every round terminates.

use crate::build;
use crate::bv::SBool;
use crate::model::Model;
use crate::term::{mask, with_ctx, Op, Sort, TermId};
use std::collections::{HashMap, HashSet};

/// Fixpoint round cap; real workloads converge in 2–3 rounds.
const MAX_ROUNDS: usize = 8;

/// Minimum width saving (in bits) before a bounded variable is narrowed.
/// Narrowing below this saves too few SAT variables to pay for the
/// `zext` indirection in the term DAG.
const NARROW_MIN_SAVING: u32 = 4;

/// Recursion budget for the structural equality rewriter. Each step
/// strictly descends an `ite` spine (or strips a `zext`), so real chains
/// stay far below this; the cap is a stack-depth backstop.
const EQ_FUEL: u32 = 512;

/// Whether `SERVAL_PRESOLVE` enables presolve (default: on).
pub fn env_enabled() -> bool {
    std::env::var("SERVAL_PRESOLVE")
        .map(|v| !matches!(v.trim(), "0" | "off" | "false"))
        .unwrap_or(true)
}

/// DAG size of the term graph reachable from a set of roots.
#[derive(Clone, Copy, Debug, Default)]
pub struct Counts {
    /// Distinct term nodes.
    pub terms: usize,
    /// Distinct symbolic constants (variables) among them.
    pub vars: usize,
}

/// Counts distinct nodes and variables reachable from `roots`.
pub fn measure(roots: impl Iterator<Item = TermId>) -> Counts {
    let mut seen: HashSet<TermId> = HashSet::new();
    let mut stack: Vec<TermId> = roots.collect();
    let mut vars = 0usize;
    while let Some(t) = stack.pop() {
        if !seen.insert(t) {
            continue;
        }
        with_ctx(|c| {
            let n = c.term(t);
            if matches!(n.op, Op::Var(_)) {
                vars += 1;
            }
            stack.extend(n.children.iter().copied());
        });
    }
    Counts { terms: seen.len(), vars }
}

/// The presolved shared assumption base: simplified roots plus the
/// substitution / fact / range environment needed to simplify goals
/// phrased over the same assumptions and to complete countermodels.
#[derive(Debug, Default)]
pub struct BaseSimp {
    /// Surviving assumption roots, simplified and deduplicated. A
    /// contradictory base collapses to a single constant-`false` root.
    pub roots: Vec<SBool>,
    /// Harvested `var := definition` bindings, in harvest order. A
    /// definition may reference variables bound *later* (or never), but
    /// not earlier ones, so reverse-order evaluation re-derives every
    /// eliminated variable from a model of the simplified query — see
    /// [`complete_model`].
    pub bindings: Vec<(TermId, TermId)>,
    /// Variable substitution map (same content as `bindings`).
    subst: HashMap<TermId, TermId>,
    /// Root ids asserted true (the surviving roots).
    facts: HashSet<TermId>,
    /// Ids whose negation is asserted (roots of shape `¬x`).
    neg_facts: HashSet<TermId>,
    /// Per-variable abstract seeds harvested from comparison roots.
    ranges: HashMap<TermId, Abs>,
}

/// Known-bits + unsigned-interval abstract value for one bitvector term.
#[derive(Clone, Copy, Debug)]
struct Abs {
    /// Bits known to be zero.
    zeros: u128,
    /// Bits known to be one.
    ones: u128,
    /// Unsigned lower bound.
    lo: u128,
    /// Unsigned upper bound.
    hi: u128,
}

impl Abs {
    fn top(w: u32) -> Abs {
        Abs {
            zeros: !mask(w, u128::MAX),
            ones: 0,
            lo: 0,
            hi: mask(w, u128::MAX),
        }
    }

    fn constant(w: u32, v: u128) -> Abs {
        let v = mask(w, v);
        Abs { zeros: !v, ones: v, lo: v, hi: v }
    }

    /// Restores the invariants `lo ≥ ones`, `hi ≤ ~zeros`, `lo ≤ hi`.
    /// A violated `lo ≤ hi` means the seeding facts are jointly
    /// unsatisfiable; clamping to a singleton keeps later folds
    /// well-defined (and vacuously sound — the base has no models).
    fn norm(mut self, w: u32) -> Abs {
        let m = mask(w, u128::MAX);
        self.ones &= m;
        self.zeros |= !m;
        self.lo = self.lo.max(self.ones);
        self.hi = self.hi.min(!self.zeros & m);
        if self.lo > self.hi {
            self.hi = self.lo;
        }
        self
    }

    /// The single possible value, if the abstraction pins one down.
    fn singleton(&self, w: u32) -> Option<u128> {
        if self.lo == self.hi {
            return Some(self.lo);
        }
        if self.zeros | self.ones == u128::MAX {
            return Some(mask(w, self.ones));
        }
        None
    }

    /// Sign bit (`true` = known negative), if known.
    fn sign(&self, w: u32) -> Option<bool> {
        let top = 1u128 << (w - 1);
        if self.ones & top != 0 {
            Some(true)
        } else if self.zeros & top != 0 {
            Some(false)
        } else {
            None
        }
    }
}

fn fetch(t: TermId) -> (Op, Vec<TermId>, Sort) {
    with_ctx(|c| {
        let n = c.term(t);
        (n.op.clone(), n.children.clone(), n.sort)
    })
}

fn is_var(t: TermId) -> bool {
    with_ctx(|c| matches!(c.term(t).op, Op::Var(_)))
}

/// The argument of a `zext`, if `t` is one.
fn as_zext(t: TermId) -> Option<TermId> {
    with_ctx(|c| {
        let n = c.term(t);
        matches!(n.op, Op::ZeroExt).then(|| n.children[0])
    })
}

/// The base and constant amount of a shift-left by a constant.
fn as_shl_const(t: TermId) -> Option<(TermId, u128)> {
    let (op, ch, _) = fetch(t);
    if matches!(op, Op::BvShl) {
        if let Some(k) = build::as_bv_const(ch[1]) {
            return Some((ch[0], k));
        }
    }
    None
}

/// Flattens the top-level `And` structure of each root into conjuncts,
/// dropping constant-`true` entries and duplicates.
fn flatten(roots: impl Iterator<Item = TermId>, out: &mut Vec<TermId>) {
    let mut present: HashSet<TermId> = out.iter().copied().collect();
    let mut stack: Vec<TermId> = roots.collect();
    stack.reverse();
    while let Some(t) = stack.pop() {
        let (op, children, _) = fetch(t);
        if matches!(op, Op::And) {
            for &ch in children.iter().rev() {
                stack.push(ch);
            }
        } else if !SBool(t).is_true() && present.insert(t) {
            out.push(t);
        }
    }
}

/// One abstract fact extracted from a comparison-shaped root.
enum Seed {
    Hi(TermId, u128),
    Lo(TermId, u128),
    Zeros(TermId, u128),
}

/// Seeds from one `ult`/`ule` atom (possibly under a negation, which
/// flips `ult(a,b)` into `ule(b,a)` and vice versa).
fn seed_cmp(op: &Op, a: TermId, b: TermId, negated: bool, out: &mut Vec<Seed>) {
    let (op, a, b) = if negated {
        match op {
            Op::Ult => (Op::Ule, b, a),
            Op::Ule => (Op::Ult, b, a),
            _ => return,
        }
    } else {
        (op.clone(), a, b)
    };
    if is_var(a) {
        if let Some(k) = build::as_bv_const(b) {
            match op {
                Op::Ult if k > 0 => out.push(Seed::Hi(a, k - 1)),
                Op::Ule => out.push(Seed::Hi(a, k)),
                _ => {}
            }
            return;
        }
    }
    if is_var(b) {
        if let Some(k) = build::as_bv_const(a) {
            match op {
                Op::Ult if k < u128::MAX => out.push(Seed::Lo(b, k + 1)),
                Op::Ule => out.push(Seed::Lo(b, k)),
                _ => {}
            }
        }
    }
}

/// Extracts abstract seeds from comparison-shaped roots: `ult(v, k)`,
/// `ule(k, v)`, their negations, and alignment facts `eq(v & m, 0)`.
fn harvest_ranges(roots: &[TermId]) -> HashMap<TermId, Abs> {
    let mut seeds: Vec<Seed> = Vec::new();
    for &r in roots {
        let (op, ch, _) = fetch(r);
        match op {
            Op::Ult | Op::Ule => seed_cmp(&op, ch[0], ch[1], false, &mut seeds),
            Op::Not => {
                let (iop, ich, _) = fetch(ch[0]);
                if matches!(iop, Op::Ult | Op::Ule) {
                    seed_cmp(&iop, ich[0], ich[1], true, &mut seeds);
                }
            }
            Op::Eq => {
                // eq(v & m, 0) pins the masked bits of v to zero.
                if build::as_bv_const(ch[1]) == Some(0) {
                    let (iop, ich, _) = fetch(ch[0]);
                    if matches!(iop, Op::BvAnd) && is_var(ich[0]) {
                        if let Some(m) = build::as_bv_const(ich[1]) {
                            seeds.push(Seed::Zeros(ich[0], m));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    let mut ranges: HashMap<TermId, Abs> = HashMap::new();
    for s in seeds {
        let v = match s {
            Seed::Hi(v, _) | Seed::Lo(v, _) | Seed::Zeros(v, _) => v,
        };
        let w = build::width_of(v);
        let a = ranges.entry(v).or_insert_with(|| Abs::top(w));
        match s {
            Seed::Hi(_, k) => a.hi = a.hi.min(k),
            Seed::Lo(_, k) => a.lo = a.lo.max(k),
            Seed::Zeros(_, m) => a.zeros |= m,
        }
        *a = a.norm(w);
    }
    ranges
}

/// The per-round rewriter: substitution + smart-constructor rebuild +
/// fact folding + known-bits/interval folding, memoized over the DAG.
struct Rewriter<'a> {
    simp: &'a BaseSimp,
    memo: HashMap<TermId, TermId>,
    abs: HashMap<TermId, Abs>,
    eq_memo: HashMap<(TermId, TermId), TermId>,
    /// Root mode disables every fold justified by the abstract ranges.
    /// Ranges are seeded *by* the roots, so a range fold inside the
    /// seeding root could delete the very constraint that justifies it
    /// (e.g. `eq(x & 3, 0)` seeds `x`'s zero bits, which would fold its
    /// own `x & 3` subterm to `0` and the root to `true`). Goal
    /// rewriting keeps them: the goal is not asserted, and all range
    /// sources stay asserted, so every fold is an equivalence under the
    /// base. Fact/negated-fact folds stay enabled in both modes — their
    /// justifying root is always a strictly smaller term, so chains of
    /// fact-justified drops are well-founded and never circular.
    root_mode: bool,
}

impl<'a> Rewriter<'a> {
    fn new(simp: &'a BaseSimp, root_mode: bool) -> Rewriter<'a> {
        Rewriter {
            simp,
            memo: HashMap::new(),
            abs: HashMap::new(),
            eq_memo: HashMap::new(),
            root_mode,
        }
    }

    /// Structural equality rewriting over `ite` spines and `zext`
    /// wrappers. Refinement-style goals equate two large mux trees that
    /// agree on most branches (untouched state), so descending the
    /// spines and cancelling equal branch pairs removes whole mux
    /// networks from the blasted cone. Purely equivalence-preserving —
    /// no fact or range reasoning — so it is safe in root mode too.
    /// Memoized on unordered pairs; every recursion strictly descends
    /// one side (or strips a `zext`), so it terminates.
    fn eq_deep(&mut self, a: TermId, b: TermId, fuel: u32) -> TermId {
        if a == b {
            return build::bool_const(true);
        }
        if fuel == 0 {
            return build::eq(a, b);
        }
        let key = (a.min(b), a.max(b));
        if let Some(&r) = self.eq_memo.get(&key) {
            return r;
        }
        let mut r = self.eq_deep_steps(key.0, key.1, fuel - 1);
        // Case splits pay off only when branches fold; a split that
        // grew the cone would hand the blaster *more* gates than the
        // plain equality, so size-guard the result.
        if build::as_bool_const(r).is_none() {
            let plain = build::eq(key.0, key.1);
            if measure([r].into_iter()).terms > measure([plain].into_iter()).terms {
                r = plain;
            }
        }
        self.eq_memo.insert(key, r);
        r
    }

    fn eq_deep_steps(&mut self, a: TermId, b: TermId, fuel: u32) -> TermId {
        let ia = build::as_ite(a);
        let ib = build::as_ite(b);
        if let (Some((c1, t1, e1)), Some((c2, t2, e2))) = (ia, ib) {
            // Same-condition muxes compare branchwise; equal branch
            // pairs (the common case) then cancel to `true`.
            if c1 == c2 {
                let tt = self.eq_deep(t1, t2, fuel);
                let ee = self.eq_deep(e1, e2, fuel);
                return build::ite_bool(c1, tt, ee);
            }
            // Different conditions: case-split, but only when at least
            // one aligned branch pair folds to a constant — refinement
            // goals equate an implementation and a specification mux
            // tree whose aligned branches are syntactically equal, and
            // the split then dissolves both mux networks. Without a
            // folding pair the split would trade two muxes for four
            // equalities, so fall through instead.
            let tt = self.eq_deep(t1, t2, fuel);
            let ee = self.eq_deep(e1, e2, fuel);
            if build::as_bool_const(tt).is_some() || build::as_bool_const(ee).is_some() {
                let te = self.eq_deep(t1, e2, fuel);
                let et = self.eq_deep(e1, t2, fuel);
                return build::ite_bool(
                    c1,
                    build::ite_bool(c2, tt, te),
                    build::ite_bool(c2, et, ee),
                );
            }
        }
        // One-sided: `ite(c, t, e) = b` splits when either branch
        // equality folds (the `t = b` / `e = b` cases fold to `true`;
        // disjoint constants fold to `false`), turning a wide mux +
        // equality into boolean structure over one smaller equality.
        for (x, y) in [(a, b), (b, a)] {
            if let Some((c, t, e)) = build::as_ite(x) {
                let pt = self.eq_deep(t, y, fuel);
                let pe = self.eq_deep(e, y, fuel);
                if build::as_bool_const(pt).is_some() || build::as_bool_const(pe).is_some() {
                    return build::ite_bool(c, pt, pe);
                }
            }
        }
        // Width narrowing: comparisons of zero-extended values decide on
        // the low bits alone, so the blaster encodes the short equality.
        if let (Some(ia), Some(ib)) = (as_zext(a), as_zext(b)) {
            if build::width_of(ia) == build::width_of(ib) {
                return self.eq_deep(ia, ib, fuel);
            }
        }
        for (x, y) in [(a, b), (b, a)] {
            if let (Some(ix), Some(k)) = (as_zext(x), build::as_bv_const(y)) {
                let wi = build::width_of(ix);
                return if k > mask(wi, u128::MAX) {
                    build::bool_const(false)
                } else {
                    self.eq_deep(ix, build::bv_const(wi, k), fuel)
                };
            }
        }
        // `x << k = c` fixes the low k bits of c to zero and compares
        // the surviving low part of x: it aligns scaled index
        // comparisons (`cur * 64 = i * 64`) with their unscaled
        // specification twins (`cur = i`).
        for (x, y) in [(a, b), (b, a)] {
            if let (Some((sx, sk)), Some(c)) = (as_shl_const(x), build::as_bv_const(y)) {
                let w = build::width_of(x);
                if sk > 0 && sk < w as u128 {
                    let k = sk as u32;
                    if c & mask(k, u128::MAX) != 0 {
                        return build::bool_const(false);
                    }
                    let lo = build::extract(w - 1 - k, 0, sx);
                    return self.eq_deep(lo, build::bv_const(w - k, c >> k), fuel);
                }
            }
        }
        build::eq(a, b)
    }

    /// Narrows `ult`/`ule` over zero-extended operands, mirroring the
    /// equality narrowing in [`Rewriter::eq_deep`].
    fn cmp_narrow(&mut self, strict: bool, a: TermId, b: TermId) -> Option<TermId> {
        let cmp = |x, y| if strict { build::ult(x, y) } else { build::ule(x, y) };
        if let (Some(ia), Some(ib)) = (as_zext(a), as_zext(b)) {
            if build::width_of(ia) == build::width_of(ib) {
                return Some(cmp(ia, ib));
            }
        }
        if let (Some(ia), Some(k)) = (as_zext(a), build::as_bv_const(b)) {
            let m = mask(build::width_of(ia), u128::MAX);
            // `zext(x) < k` is vacuous once `k` exceeds every value of x.
            let always = if strict { k > m } else { k >= m };
            return Some(if always {
                build::bool_const(true)
            } else {
                cmp(ia, build::bv_const(build::width_of(ia), k))
            });
        }
        if let (Some(k), Some(ib)) = (build::as_bv_const(a), as_zext(b)) {
            let m = mask(build::width_of(ib), u128::MAX);
            let never = if strict { k >= m } else { k > m };
            return Some(if never {
                build::bool_const(false)
            } else {
                cmp(build::bv_const(build::width_of(ib), k), ib)
            });
        }
        None
    }

    /// Rebuilds one node from rewritten children: the smart constructor,
    /// plus the structural equality/comparison rules above.
    fn rebuild_smart(&mut self, op: &Op, ch: &[TermId], sort: Sort) -> TermId {
        match op {
            Op::Eq => self.eq_deep(ch[0], ch[1], EQ_FUEL),
            Op::Ult | Op::Ule => self
                .cmp_narrow(matches!(op, Op::Ult), ch[0], ch[1])
                .unwrap_or_else(|| rebuild(op, ch, sort)),
            _ => rebuild(op, ch, sort),
        }
    }

    /// Abstract value of (already rewritten) bitvector term `t`.
    fn abs_of(&mut self, root: TermId) -> Abs {
        let mut stack = vec![root];
        while let Some(&t) = stack.last() {
            if self.abs.contains_key(&t) {
                stack.pop();
                continue;
            }
            let (op, children, sort) = fetch(t);
            let w = match sort {
                Sort::BitVec(w) => w,
                // Bool children (ite conditions) carry no abstraction.
                Sort::Bool => {
                    self.abs.insert(t, Abs::top(1));
                    stack.pop();
                    continue;
                }
            };
            let pending: Vec<TermId> = children
                .iter()
                .copied()
                .filter(|c| !self.abs.contains_key(c))
                .collect();
            if !pending.is_empty() {
                stack.extend(pending);
                continue;
            }
            let ch = |i: usize| self.abs[&children[i]];
            let m = mask(w, u128::MAX);
            let a = match op {
                Op::BvConst(v) => Abs::constant(w, v),
                Op::Var(_) => self
                    .simp
                    .ranges
                    .get(&t)
                    .copied()
                    .unwrap_or_else(|| Abs::top(w)),
                Op::BvAnd => {
                    let (a, b) = (ch(0), ch(1));
                    Abs {
                        zeros: a.zeros | b.zeros,
                        ones: a.ones & b.ones,
                        lo: 0,
                        hi: a.hi.min(b.hi),
                    }
                }
                Op::BvOr => {
                    let (a, b) = (ch(0), ch(1));
                    Abs {
                        zeros: a.zeros & b.zeros,
                        ones: a.ones | b.ones,
                        lo: a.lo.max(b.lo),
                        hi: m,
                    }
                }
                Op::BvXor => {
                    let (a, b) = (ch(0), ch(1));
                    Abs {
                        zeros: (a.zeros & b.zeros) | (a.ones & b.ones),
                        ones: (a.ones & b.zeros) | (a.zeros & b.ones),
                        lo: 0,
                        hi: m,
                    }
                }
                Op::BvNot => {
                    let a = ch(0);
                    Abs {
                        zeros: a.ones,
                        ones: a.zeros & m,
                        lo: !a.hi & m,
                        hi: !a.lo & m,
                    }
                }
                Op::BvAdd => {
                    let (a, b) = (ch(0), ch(1));
                    match (a.lo.checked_add(b.lo), a.hi.checked_add(b.hi)) {
                        (Some(lo), Some(hi)) if hi <= m => {
                            Abs { zeros: 0, ones: 0, lo, hi }
                        }
                        _ => Abs::top(w),
                    }
                }
                Op::BvSub => {
                    let (a, b) = (ch(0), ch(1));
                    if a.lo >= b.hi {
                        Abs {
                            zeros: 0,
                            ones: 0,
                            lo: a.lo - b.hi,
                            hi: a.hi - b.lo,
                        }
                    } else {
                        Abs::top(w)
                    }
                }
                Op::BvMul => {
                    let (a, b) = (ch(0), ch(1));
                    match (a.lo.checked_mul(b.lo), a.hi.checked_mul(b.hi)) {
                        (Some(lo), Some(hi)) if hi <= m => {
                            Abs { zeros: 0, ones: 0, lo, hi }
                        }
                        _ => Abs::top(w),
                    }
                }
                Op::BvUdiv => {
                    let (a, b) = (ch(0), ch(1));
                    if b.lo > 0 {
                        // Divisor can't be zero, so no all-ones case.
                        Abs {
                            zeros: 0,
                            ones: 0,
                            lo: a.lo / b.hi.max(1),
                            hi: a.hi / b.lo,
                        }
                    } else {
                        Abs::top(w)
                    }
                }
                Op::BvUrem => {
                    let (a, b) = (ch(0), ch(1));
                    let hi = if b.lo > 0 {
                        a.hi.min(b.hi - 1)
                    } else {
                        // A zero divisor yields the dividend.
                        a.hi.max(b.hi.saturating_sub(1))
                    };
                    Abs { zeros: 0, ones: 0, lo: 0, hi }
                }
                Op::BvShl => match ch(1).singleton(w) {
                    Some(k) if k < w as u128 => {
                        let a = ch(0);
                        let k = k as u32;
                        // Range shifts only transfer when neither bound
                        // loses bits (the shift is exact within width).
                        let sh = |v: u128| {
                            let s = v << k;
                            (s <= m && s >> k == v).then_some(s)
                        };
                        let (lo, hi) = match (sh(a.lo), sh(a.hi)) {
                            (Some(lo), Some(hi)) => (lo, hi),
                            _ => (0, m),
                        };
                        Abs {
                            zeros: (a.zeros << k) | mask(k, u128::MAX),
                            ones: (a.ones << k) & m,
                            lo,
                            hi,
                        }
                    }
                    _ => Abs::top(w),
                },
                Op::BvLshr => match ch(1).singleton(w) {
                    Some(k) if k < w as u128 => {
                        let a = ch(0);
                        let k = k as u32;
                        Abs {
                            zeros: (a.zeros >> k) | !(m >> k),
                            ones: a.ones >> k,
                            lo: a.lo >> k,
                            hi: a.hi >> k,
                        }
                    }
                    _ => Abs::top(w),
                },
                Op::ZeroExt => {
                    let a = ch(0);
                    let wi = build::width_of(children[0]);
                    Abs {
                        zeros: a.zeros | !mask(wi, u128::MAX),
                        ones: a.ones,
                        lo: a.lo,
                        hi: a.hi,
                    }
                }
                Op::SignExt => {
                    let a = ch(0);
                    let wi = build::width_of(children[0]);
                    match a.sign(wi) {
                        Some(false) => Abs {
                            zeros: a.zeros | !mask(wi, u128::MAX),
                            ones: a.ones,
                            lo: a.lo,
                            hi: a.hi,
                        },
                        Some(true) => Abs {
                            zeros: a.zeros & mask(wi, u128::MAX),
                            ones: a.ones | (m & !mask(wi, u128::MAX)),
                            lo: 0,
                            hi: m,
                        },
                        None => Abs {
                            zeros: a.zeros & mask(wi - 1, u128::MAX),
                            ones: a.ones & mask(wi - 1, u128::MAX),
                            lo: 0,
                            hi: m,
                        },
                    }
                }
                Op::Extract(_, lo) => {
                    let a = ch(0);
                    let em = mask(w, u128::MAX);
                    // A low extract whose source range already fits the
                    // extracted width keeps the range exactly.
                    let (rlo, rhi) = if lo == 0 && a.hi <= em {
                        (a.lo, a.hi)
                    } else {
                        (0, em)
                    };
                    Abs {
                        zeros: (a.zeros >> lo) & em | !em,
                        ones: (a.ones >> lo) & em,
                        lo: rlo,
                        hi: rhi,
                    }
                }
                Op::Concat => {
                    let (h, l) = (ch(0), ch(1));
                    let wl = build::width_of(children[1]);
                    Abs {
                        zeros: (h.zeros << wl) | (l.zeros & mask(wl, u128::MAX)),
                        ones: (h.ones << wl) | l.ones,
                        lo: (h.lo << wl) + l.lo,
                        hi: (h.hi << wl) + l.hi,
                    }
                }
                Op::IteBv => {
                    let (t1, e1) = (ch(1), ch(2));
                    Abs {
                        zeros: t1.zeros & e1.zeros,
                        ones: t1.ones & e1.ones,
                        lo: t1.lo.min(e1.lo),
                        hi: t1.hi.max(e1.hi),
                    }
                }
                _ => Abs::top(w),
            };
            self.abs.insert(t, a.norm(w));
            stack.pop();
        }
        self.abs[&root]
    }

    /// Folds a boolean term using the fact environment and, for
    /// comparisons, the abstract values of its operands. Returns the
    /// (possibly unchanged) term.
    fn fold_bool(&mut self, t: TermId) -> TermId {
        let (op, ch, _) = fetch(t);
        let decided = match op {
            Op::Ult => self.cmp_abs(ch[0], ch[1], false),
            Op::Ule => self.cmp_abs(ch[0], ch[1], true),
            Op::Slt => self.scmp_abs(ch[0], ch[1], false),
            Op::Sle => self.scmp_abs(ch[0], ch[1], true),
            Op::Eq if build::sort_of(ch[0]) != Sort::Bool => {
                let (a, b) = (self.abs_of(ch[0]), self.abs_of(ch[1]));
                if a.lo > b.hi || b.lo > a.hi || (a.ones & b.zeros) | (b.ones & a.zeros) != 0 {
                    Some(false)
                } else {
                    None
                }
            }
            _ => None,
        };
        match decided {
            Some(b) => SBool(build::bool_const(b)).0,
            None => t,
        }
    }

    /// Decides `a < b` (`or_eq` = `≤`) from unsigned ranges, if possible.
    fn cmp_abs(&mut self, a: TermId, b: TermId, or_eq: bool) -> Option<bool> {
        let (aa, ab) = (self.abs_of(a), self.abs_of(b));
        if if or_eq { aa.hi <= ab.lo } else { aa.hi < ab.lo } {
            return Some(true);
        }
        if if or_eq { aa.lo > ab.hi } else { aa.lo >= ab.hi } {
            return Some(false);
        }
        None
    }

    /// Signed comparison via known sign bits: decided outright when the
    /// signs differ, reduced to the unsigned range comparison when they
    /// agree (two's-complement order is monotone within one sign class).
    fn scmp_abs(&mut self, a: TermId, b: TermId, or_eq: bool) -> Option<bool> {
        let w = build::width_of(a);
        let (sa, sb) = (self.abs_of(a).sign(w), self.abs_of(b).sign(w));
        match (sa?, sb?) {
            (true, false) => Some(true),
            (false, true) => Some(false),
            _ => self.cmp_abs(a, b, or_eq),
        }
    }

    /// Interior rewrite: substitution, smart-constructor rebuild, fact
    /// folding (entry id), and dataflow folding. Memoized; iterative so
    /// deep obligation DAGs cannot overflow the stack.
    fn rewrite(&mut self, root: TermId) -> TermId {
        let mut stack = vec![root];
        while let Some(&t) = stack.last() {
            if self.memo.contains_key(&t) {
                stack.pop();
                continue;
            }
            // Fact folding on the *entry* id: a strict subterm can never
            // be its own enclosing root, so no root deletes itself here.
            if self.simp.facts.contains(&t) {
                self.memo.insert(t, build::bool_const(true));
                stack.pop();
                continue;
            }
            if self.simp.neg_facts.contains(&t) {
                self.memo.insert(t, build::bool_const(false));
                stack.pop();
                continue;
            }
            let (op, children, sort) = fetch(t);
            if matches!(op, Op::Var(_)) {
                match self.simp.subst.get(&t) {
                    Some(&def) => match self.memo.get(&def) {
                        Some(&d) => {
                            self.memo.insert(t, d);
                            stack.pop();
                        }
                        None => stack.push(def),
                    },
                    None => {
                        self.memo.insert(t, t);
                        stack.pop();
                    }
                }
                continue;
            }
            let pending: Vec<TermId> = children
                .iter()
                .copied()
                .filter(|c| !self.memo.contains_key(c))
                .collect();
            if !pending.is_empty() {
                stack.extend(pending);
                continue;
            }
            let ch: Vec<TermId> = children.iter().map(|c| self.memo[c]).collect();
            let mut r = self.rebuild_smart(&op, &ch, sort);
            if !self.root_mode {
                match build::sort_of(r) {
                    Sort::Bool => {
                        if build::as_bool_const(r).is_none() {
                            r = self.fold_bool(r);
                        }
                    }
                    Sort::BitVec(w) => {
                        // Singleton abstraction ⇒ the term is constant
                        // in every model of the base. Variables are
                        // exempt: they are eliminated through
                        // *bindings* instead, so countermodels keep an
                        // entry for them.
                        if build::as_bv_const(r).is_none() && !is_var(r) {
                            if let Some(v) = self.abs_of(r).singleton(w) {
                                r = build::bv_const(w, v);
                            }
                        }
                    }
                }
            }
            self.memo.insert(t, r);
            stack.pop();
        }
        self.memo[&root]
    }

    /// Root rewrite for a surviving assumption: children through the
    /// interior rewriter, the top rebuilt by its smart constructor only
    /// — no fact folding at the top node, so a root can never be
    /// deleted by the very fact it contributes. For a `¬B` root the
    /// protection extends one level down: the root contributes `B` to
    /// `neg_facts`, so `B`'s own top must not fold through that entry
    /// (it would turn `¬B` into `¬false = true` and silently drop the
    /// constraint). Deeper occurrences of `B` are fine — hash-consing
    /// makes a strict subterm of `B` distinct from `B`.
    fn rewrite_root(&mut self, t: TermId) -> TermId {
        let (op, children, sort) = fetch(t);
        if matches!(op, Op::Var(_)) {
            return match self.simp.subst.get(&t) {
                Some(&def) => self.rewrite(def),
                None => t,
            };
        }
        if matches!(op, Op::Not) {
            return build::not(self.rewrite_top_protected(children[0]));
        }
        let ch: Vec<TermId> = children.iter().map(|&c| self.rewrite(c)).collect();
        self.rebuild_smart(&op, &ch, sort)
    }

    /// Rewrites `t` without consulting the fact environment for `t`'s
    /// own id: children go through the interior rewriter, the top is
    /// rebuilt structurally. Bypasses the memo for the top node (a
    /// memoized interior rewrite of the same id may have fact-folded).
    fn rewrite_top_protected(&mut self, t: TermId) -> TermId {
        let (op, children, sort) = fetch(t);
        if matches!(op, Op::Var(_)) {
            return match self.simp.subst.get(&t) {
                Some(&def) => self.rewrite(def),
                None => t,
            };
        }
        let ch: Vec<TermId> = children.iter().map(|&c| self.rewrite(c)).collect();
        self.rebuild_smart(&op, &ch, sort)
    }
}

/// Re-applies the smart constructor for `op` to rewritten children.
fn rebuild(op: &Op, ch: &[TermId], sort: Sort) -> TermId {
    match op {
        Op::BoolConst(b) => build::bool_const(*b),
        Op::BvConst(v) => build::bv_const(sort.width(), *v),
        Op::Var(_) => unreachable!("vars handled by the rewriter"),
        Op::Not => build::not(ch[0]),
        Op::And => build::and(ch[0], ch[1]),
        Op::Or => build::or(ch[0], ch[1]),
        Op::Xor => build::xor(ch[0], ch[1]),
        Op::Iff => build::iff(ch[0], ch[1]),
        Op::IteBool => build::ite_bool(ch[0], ch[1], ch[2]),
        Op::Eq => build::eq(ch[0], ch[1]),
        Op::Ult => build::ult(ch[0], ch[1]),
        Op::Ule => build::ule(ch[0], ch[1]),
        Op::Slt => build::slt(ch[0], ch[1]),
        Op::Sle => build::sle(ch[0], ch[1]),
        Op::BvNot => build::bvnot(ch[0]),
        Op::BvNeg => build::bvneg(ch[0]),
        Op::BvAnd => build::bvand(ch[0], ch[1]),
        Op::BvOr => build::bvor(ch[0], ch[1]),
        Op::BvXor => build::bvxor(ch[0], ch[1]),
        Op::BvAdd => build::bvadd(ch[0], ch[1]),
        Op::BvSub => build::bvsub(ch[0], ch[1]),
        Op::BvMul => build::bvmul(ch[0], ch[1]),
        Op::BvUdiv => build::bvudiv(ch[0], ch[1]),
        Op::BvUrem => build::bvurem(ch[0], ch[1]),
        Op::BvShl => build::bvshl(ch[0], ch[1]),
        Op::BvLshr => build::bvlshr(ch[0], ch[1]),
        Op::BvAshr => build::bvashr(ch[0], ch[1]),
        Op::Concat => build::concat(ch[0], ch[1]),
        Op::Extract(hi, lo) => build::extract(*hi, *lo, ch[0]),
        Op::ZeroExt => build::zext(sort.width(), ch[0]),
        Op::SignExt => build::sext(sort.width(), ch[0]),
        Op::IteBv => build::ite_bv(ch[0], ch[1], ch[2]),
        Op::UfApply(uf) => build::uf_apply(*uf, ch),
    }
}

/// Whether variable `v` occurs in `def` once all current bindings are
/// resolved (the occurs check that keeps the substitution acyclic).
fn occurs(v: TermId, def: TermId, subst: &HashMap<TermId, TermId>) -> bool {
    let mut seen: HashSet<TermId> = HashSet::new();
    let mut stack = vec![def];
    while let Some(t) = stack.pop() {
        if !seen.insert(t) {
            continue;
        }
        if t == v {
            return true;
        }
        let (op, children, _) = fetch(t);
        if matches!(op, Op::Var(_)) {
            if let Some(&d) = subst.get(&t) {
                stack.push(d);
            }
        } else {
            stack.extend(children);
        }
    }
    false
}

/// Presolves a shared assumption set to a fixpoint. The result is
/// goal-independent, so the engine computes it once per assumption set
/// and reuses it across every sub-query (and every session goal).
pub fn presolve_base(assumptions: &[SBool]) -> BaseSimp {
    let mut simp = BaseSimp::default();
    let mut roots: Vec<TermId> = Vec::new();
    flatten(assumptions.iter().map(|a| a.0), &mut roots);
    for round in 0..MAX_ROUNDS {
        // Refresh the fact/range environment for this round.
        simp.facts = roots.iter().copied().collect();
        simp.neg_facts = roots
            .iter()
            .filter_map(|&r| {
                let (op, ch, _) = fetch(r);
                matches!(op, Op::Not).then(|| ch[0])
            })
            .collect();
        simp.ranges = harvest_ranges(&roots);

        let mut changed = false;

        // Harvest: equalities, pinned booleans, singleton ranges, and
        // narrowable bounded variables become bindings.
        let mut kept: Vec<TermId> = Vec::with_capacity(roots.len());
        for &r in &roots {
            let (op, ch, _) = fetch(r);
            let bound = |simp: &BaseSimp, t: TermId| simp.subst.contains_key(&t);
            let mut harvested = false;
            match op {
                Op::Eq => {
                    for (v, d) in [(ch[0], ch[1]), (ch[1], ch[0])] {
                        if is_var(v) && !bound(&simp, v) && !occurs(v, d, &simp.subst) {
                            simp.bindings.push((v, d));
                            simp.subst.insert(v, d);
                            harvested = true;
                            break;
                        }
                    }
                }
                Op::Var(_) => {
                    if !bound(&simp, r) {
                        let d = build::bool_const(true);
                        simp.bindings.push((r, d));
                        simp.subst.insert(r, d);
                        harvested = true;
                    }
                }
                Op::Not if is_var(ch[0]) => {
                    if !bound(&simp, ch[0]) {
                        let d = build::bool_const(false);
                        simp.bindings.push((ch[0], d));
                        simp.subst.insert(ch[0], d);
                        harvested = true;
                    }
                }
                _ => {}
            }
            if harvested {
                changed = true;
            } else {
                kept.push(r);
            }
        }

        // Singleton-range variables become constant bindings; bounded
        // wide variables are narrowed to `zext` of a fresh short one.
        // The seeding roots stay in `kept`, so the facts survive (and
        // after substitution most fold to `true` structurally).
        let seeded: Vec<(TermId, Abs)> = simp
            .ranges
            .iter()
            .map(|(&v, &a)| (v, a))
            .collect();
        for (v, a) in seeded {
            if simp.subst.contains_key(&v) {
                continue;
            }
            let w = build::width_of(v);
            if let Some(val) = a.singleton(w) {
                let d = build::bv_const(w, val);
                simp.bindings.push((v, d));
                simp.subst.insert(v, d);
                changed = true;
                continue;
            }
            let need = 128 - a.hi.leading_zeros();
            if need >= 1 && need + NARROW_MIN_SAVING <= w {
                let narrow = with_ctx(|c| c.fresh_var(Sort::BitVec(need), "presolve_narrow"));
                let d = build::zext(w, narrow);
                simp.bindings.push((v, d));
                simp.subst.insert(v, d);
                changed = true;
            }
        }

        // Rewrite the surviving roots under the updated environment
        // (root mode: no range-justified folds — see `Rewriter`).
        let mut rw = Rewriter::new(&simp, true);
        let rewritten: Vec<TermId> = kept.iter().map(|&r| rw.rewrite_root(r)).collect();
        let mut next: Vec<TermId> = Vec::with_capacity(rewritten.len());
        flatten(rewritten.into_iter(), &mut next);
        changed |= next != roots;
        if next.iter().any(|&r| SBool(r).is_false()) {
            // Contradictory base: collapse to the canonical UNSAT form.
            roots = vec![build::bool_const(false)];
            changed = false;
        } else {
            roots = next;
        }
        if !changed || round + 1 == MAX_ROUNDS {
            break;
        }
    }
    simp.facts = roots.iter().copied().collect();
    simp.neg_facts = roots
        .iter()
        .filter_map(|&r| {
            let (op, ch, _) = fetch(r);
            matches!(op, Op::Not).then(|| ch[0])
        })
        .collect();
    simp.ranges = harvest_ranges(&roots);
    simp.roots = roots.into_iter().map(SBool).collect();
    simp
}

/// Reusable per-base simplification state: the rewrite memo, the
/// abstract values, and the structural-equality memo. Goals of one base
/// share large term cones, so carrying these maps across goals avoids
/// re-deriving the abstraction and rewrites of the shared cone per goal.
#[derive(Debug, Default)]
pub struct GoalCache {
    memo: HashMap<TermId, TermId>,
    abs: HashMap<TermId, Abs>,
    eq_memo: HashMap<(TermId, TermId), TermId>,
}

/// Simplifies one goal under a presolved base: substitution, fact
/// folding, dataflow folding, and structural equality rewriting. The
/// cache must only ever be used with the `simp` it was first used with.
pub fn simplify_goal_cached(simp: &BaseSimp, goal: SBool, cache: &mut GoalCache) -> SBool {
    let mut rw = Rewriter::new(simp, false);
    std::mem::swap(&mut rw.memo, &mut cache.memo);
    std::mem::swap(&mut rw.abs, &mut cache.abs);
    std::mem::swap(&mut rw.eq_memo, &mut cache.eq_memo);
    let out = SBool(rw.rewrite(goal.0));
    std::mem::swap(&mut rw.memo, &mut cache.memo);
    std::mem::swap(&mut rw.abs, &mut cache.abs);
    std::mem::swap(&mut rw.eq_memo, &mut cache.eq_memo);
    out
}

/// [`simplify_goal_cached`] without a persistent cache.
pub fn simplify_goal(simp: &BaseSimp, goal: SBool) -> SBool {
    simplify_goal_cached(simp, goal, &mut GoalCache::default())
}

/// Support of a term: its symbolic constants and uninterpreted functions.
fn support(root: TermId, vars: &mut HashSet<TermId>, ufs: &mut HashSet<u32>) {
    let mut seen: HashSet<TermId> = HashSet::new();
    let mut stack = vec![root];
    while let Some(t) = stack.pop() {
        if !seen.insert(t) {
            continue;
        }
        let (op, children, _) = fetch(t);
        match op {
            Op::Var(_) => {
                vars.insert(t);
            }
            Op::UfApply(uf) => {
                ufs.insert(uf.0);
                stack.extend(children);
            }
            _ => stack.extend(children),
        }
    }
}

/// Cone-of-influence split: partitions `roots` into assumptions
/// (transitively) connected to the goal through shared variables or
/// shared uninterpreted functions, and disconnected ones.
///
/// Dropping the disconnected partition preserves *proved* verdicts
/// (`kept ∧ ¬goal` UNSAT implies the original UNSAT). A *refuted*
/// reduced query does not decide the original: if the dropped partition
/// is itself UNSAT the original query is proved, so the caller must
/// check the dropped conjunction before trusting a countermodel — see
/// the engine's `Refuted` side-solve. Constant roots (notably a
/// `false` from a contradictory base) are always kept.
pub fn cone_split(roots: &[SBool], goal: SBool) -> (Vec<SBool>, Vec<SBool>) {
    let mut reached_vars: HashSet<TermId> = HashSet::new();
    let mut reached_ufs: HashSet<u32> = HashSet::new();
    support(goal.0, &mut reached_vars, &mut reached_ufs);
    let supports: Vec<(HashSet<TermId>, HashSet<u32>)> = roots
        .iter()
        .map(|r| {
            let mut v = HashSet::new();
            let mut u = HashSet::new();
            support(r.0, &mut v, &mut u);
            (v, u)
        })
        .collect();
    let mut kept_mask = vec![false; roots.len()];
    // Ground roots (no vars, no UFs) are constants after folding —
    // `false` must stay to keep a contradictory base contradictory.
    for (i, (v, u)) in supports.iter().enumerate() {
        if v.is_empty() && u.is_empty() {
            kept_mask[i] = true;
        }
    }
    loop {
        let mut grew = false;
        for (i, (v, u)) in supports.iter().enumerate() {
            if kept_mask[i] || (v.is_empty() && u.is_empty()) {
                continue;
            }
            if v.iter().any(|t| reached_vars.contains(t))
                || u.iter().any(|f| reached_ufs.contains(f))
            {
                kept_mask[i] = true;
                grew = true;
                reached_vars.extend(v.iter().copied());
                reached_ufs.extend(u.iter().copied());
            }
        }
        if !grew {
            break;
        }
    }
    let mut kept = Vec::new();
    let mut dropped = Vec::new();
    for (i, &r) in roots.iter().enumerate() {
        if kept_mask[i] {
            kept.push(r);
        } else {
            dropped.push(r);
        }
    }
    (kept, dropped)
}

/// Extends a countermodel of the simplified query to the original:
/// evaluates the bindings in reverse harvest order (a definition may
/// reference variables bound later, never earlier) and assigns each
/// eliminated variable its derived value.
pub fn complete_model(m: &mut Model, bindings: &[(TermId, TermId)]) {
    for &(v, def) in bindings.iter().rev() {
        match build::sort_of(v) {
            Sort::Bool => {
                let b = m.eval_bool(def);
                m.set_bool(v, b);
            }
            Sort::BitVec(_) => {
                let x = m.eval_bv(def);
                m.set_bv(v, x);
            }
        }
    }
}
