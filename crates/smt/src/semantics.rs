//! Concrete semantics of the term operators.
//!
//! A single source of truth used both by the smart constructors (constant
//! folding) and by model evaluation; any divergence between folding and
//! evaluation would be a soundness bug, so they share this module.

use crate::term::{mask, to_signed, Op};

/// Evaluates a unary bitvector operator on a constant.
pub fn unop_const(op: &Op, w: u32, a: u128) -> u128 {
    let a = mask(w, a);
    match op {
        Op::BvNot => mask(w, !a),
        Op::BvNeg => mask(w, a.wrapping_neg()),
        _ => unreachable!("not a bv unop: {op:?}"),
    }
}

/// Evaluates a binary bitvector operator on constants.
pub fn binop_const(op: &Op, w: u32, a: u128, b: u128) -> u128 {
    let a = mask(w, a);
    let b = mask(w, b);
    let r = match op {
        Op::BvAdd => a.wrapping_add(b),
        Op::BvSub => a.wrapping_sub(b),
        Op::BvMul => a.wrapping_mul(b),
        Op::BvAnd => a & b,
        Op::BvOr => a | b,
        Op::BvXor => a ^ b,
        // SMT-LIB: division by zero yields all ones; remainder by zero
        // yields the dividend.
        Op::BvUdiv => {
            if b == 0 {
                u128::MAX
            } else {
                a / b
            }
        }
        Op::BvUrem => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        // Shift amounts are compared against the width as unsigned values.
        Op::BvShl => {
            if b >= w as u128 {
                0
            } else {
                a << b
            }
        }
        Op::BvLshr => {
            if b >= w as u128 {
                0
            } else {
                a >> b
            }
        }
        Op::BvAshr => {
            let s = to_signed(w, a);
            if b >= w as u128 {
                if s < 0 {
                    u128::MAX
                } else {
                    0
                }
            } else {
                (s >> b) as u128
            }
        }
        _ => unreachable!("not a bv binop: {op:?}"),
    };
    mask(w, r)
}

/// Evaluates a comparison operator on constants.
pub fn cmp_const(op: &Op, w: u32, a: u128, b: u128) -> bool {
    let ua = mask(w, a);
    let ub = mask(w, b);
    match op {
        Op::Eq => ua == ub,
        Op::Ult => ua < ub,
        Op::Ule => ua <= ub,
        Op::Slt => to_signed(w, ua) < to_signed(w, ub),
        Op::Sle => to_signed(w, ua) <= to_signed(w, ub),
        _ => unreachable!("not a comparison: {op:?}"),
    }
}
