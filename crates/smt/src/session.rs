//! Incremental discharge sessions.
//!
//! A [`Session`] owns one [`Solver`] and one [`Blaster`] for its whole
//! lifetime. The shared assumption set is asserted (and blasted) exactly
//! once; each goal's *negation* is then blasted behind a fresh activation
//! literal and solved with `solve_assuming([act])`:
//!
//! ```text
//! base clauses             (asserted once, before the first goal)
//! { !act_k, ¬goal_k }      (the guard: the only clause containing act_k)
//! solve_assuming([act_k])  Unsat ⇔ base ∧ ¬goal_k unsat ⇔ goal_k proved
//! retract(act_k)           unit !act_k retires the goal
//! ```
//!
//! Soundness of clause retention: every clause the blaster emits is
//! either (a) a Tseitin gate definition — a conservative extension naming
//! a subcircuit, valid regardless of which goal introduced it (with
//! polarity-aware encoding possibly only one implication direction, which
//! is *weaker*, hence still conservative; a model over the reduced CNF
//! extends by evaluating each gate over its inputs); (b) an Ackermann congruence
//! constraint — a valid fact of QF_UFBV; or (c) a goal guard
//! `{!act_k, g_k}`, the only clause containing `act_k` at all. Since
//! `act_k` occurs in exactly one clause and only *negatively* elsewhere
//! after retraction, resolution can only ever produce learnt clauses in
//! which `act_k` occurs negatively — so asserting `!act_k` satisfies (and
//! lets the simplifier sweep) every learnt clause that depended on goal
//! `k`, and clauses *not* mentioning `act_k` are consequences of the base
//! and gate definitions alone, valid for every later goal. Therefore
//! `solve_assuming([act_k])` answers Unsat iff `base ∧ ¬goal_k` is unsat:
//! exactly the fresh-solver verdict.
//!
//! Per-goal [`QueryStats`] report the *delta* encoding work (new SAT
//! vars/clauses blasted for this goal) plus reuse counters (vars/clauses/
//! learnts carried over from earlier goals). The first goal's delta
//! includes the base-assumption encoding, so summing deltas over a
//! session gives its true total encoding cost — directly comparable to
//! the sum of fresh per-query totals.

use crate::blast::Blaster;
use crate::bv::SBool;
use crate::presolve::{self, BaseSimp};
use crate::solver::{extract_model, CheckResult, QueryStats, SolverConfig};
use crate::term::TermId;
use serval_check::sim;
use serval_sat::{Lit, ProofStep, SolveResult, Solver, SolverStats};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

/// One goal's verdict and statistics within a session.
#[derive(Debug)]
pub struct SessionOutcome {
    /// The verdict for `base ∧ ¬goal` (Unsat = goal proved, Sat = goal
    /// refuted with the live session's countermodel).
    pub result: CheckResult,
    /// Per-goal delta statistics with session reuse counters.
    pub stats: QueryStats,
    /// This goal's proof-log delta, when logging is on (see
    /// [`Session::set_proof_logging`]).
    pub proof: Option<SessionProof>,
}

/// One goal's slice of the session's proof log.
///
/// The delta is drained *before* the goal's activation literal is
/// retracted, so on `Unsat` it ends in the goal's concluding clause —
/// a derived clause over `{!act}` (or the empty clause if the base
/// itself was refuted). The retraction unit and any sweep deletions
/// land at the *start* of the next goal's delta, keeping an incremental
/// checker's database in sync across the whole session.
#[derive(Debug)]
pub struct SessionProof {
    /// Proof steps logged since the previous goal's delta was drained.
    pub steps: Vec<ProofStep>,
    /// The goal's activation literal. `None` for the constant-false
    /// fast path, where the verdict needs no derived conclusion (the
    /// delta still carries any pending base-encoding steps).
    pub act: Option<Lit>,
}

/// An incremental discharge session: one live solver + blaster answering
/// a stream of goals that share an assumption set.
pub struct Session {
    cfg: SolverConfig,
    sat: Solver,
    blaster: Blaster,
    /// Assumptions queued until the first goal (`assume` before solving).
    base: Vec<SBool>,
    /// Asserted base roots, kept for countermodel extraction.
    base_roots: Vec<TermId>,
    base_asserted: bool,
    /// Term-walk memo covering the base cone; cloned and extended with
    /// each goal's cone to build that goal's decision scope.
    base_visited: HashSet<TermId>,
    /// Decision-scope mask for the base cone's SAT variables.
    base_mask: Vec<bool>,
    /// Negated-goal roots announced via [`Session::plan_goals`], waiting
    /// for the base cone to be computed before building the plan.
    planned: Option<Vec<TermId>>,
    /// The retirement plan, built lazily on the first goal.
    plan: Option<Plan>,
    /// Whether the base is presolved once and each goal simplified
    /// against it before blasting (see [`crate::presolve`]).
    presolve: bool,
    /// The presolved base environment, built at base-assert time.
    simp: Option<BaseSimp>,
    /// Goal-rewrite caches shared across the session's goals (they
    /// share the base environment, so rewrites are reusable verbatim).
    goal_cache: presolve::GoalCache,
    goals: u64,
}

/// The session's retirement plan: which terms die after which goal.
struct Plan {
    /// The announced goal sequence; purging is disabled on the first
    /// mismatch with the goals actually solved (safe fallback — a term
    /// that was purged must never be referenced again).
    roots: Vec<TermId>,
    /// `last_use[t]` = index of the last announced goal whose cone
    /// contains `t` (base-cone terms are excluded entirely).
    last_use: HashMap<TermId, usize>,
    /// `expiry[i]` = terms whose last use is goal `i`.
    expiry: Vec<Vec<TermId>>,
    /// `mention_until[t]` = index of the last goal whose *encoding*
    /// re-mentions already-blasted term `t`'s literals: `t` is a direct
    /// child of a term first blasted at that goal (or is that goal's
    /// root, mentioned by the guard clause). After it, `t`'s variables
    /// can never appear in a newly emitted clause through the memo, so
    /// they become eliminable (see [`Session::solve_negated`]). Terms
    /// never re-mentioned (base interior gates, dead cone interiors)
    /// have no entry and are eliminable from the first goal on.
    mention_until: HashMap<TermId, usize>,
}

impl Session {
    /// Creates a session. `interrupt` is the cooperative cancellation
    /// flag, polled inside solving *and* database sweeps.
    pub fn new(cfg: SolverConfig, interrupt: Option<Arc<AtomicBool>>) -> Session {
        let mut sat = Solver::new();
        sat.set_restart_base(cfg.restart_base);
        sat.set_var_decay(cfg.var_decay);
        sat.set_default_phase(cfg.default_phase);
        sat.set_restart_geometric(cfg.restart_geometric);
        sat.set_rephase(cfg.rephase);
        // Sessions run full inprocessing, but variable elimination is
        // *plan-scoped*: an eliminability mask derived from the
        // retirement plan admits only variables no future goal's
        // encoding can mention (see `solve_negated`), so elimination
        // shrinks the shared base and retired cones without churning
        // through reintroduction. The `inprocess-skip` buggify degrades
        // inprocessing to a no-op and `session-eliminate-skip` degrades
        // it to subsumption-only (the pre-elimination behaviour);
        // verdicts must not change either way (the sim sweep pins both).
        sat.set_inprocess(
            cfg.inprocess && !sim::buggify("inprocess-skip"),
            cfg.session_bve && !sim::buggify("session-eliminate-skip"),
        );
        sat.set_lrat_hints(cfg.lrat);
        sat.set_interrupt(interrupt);
        let mut blaster = Blaster::new();
        blaster.set_polarity(cfg.polarity);
        Session {
            cfg,
            sat,
            blaster,
            base: Vec::new(),
            base_roots: Vec::new(),
            base_asserted: false,
            base_visited: HashSet::new(),
            base_mask: Vec::new(),
            planned: None,
            plan: None,
            presolve: presolve::env_enabled(),
            simp: None,
            goal_cache: presolve::GoalCache::default(),
            goals: 0,
        }
    }

    /// Enables or disables word-level presolve for this session. The
    /// engine turns it off — it presolves queries itself, before forming
    /// session cores, so presolving again here would be wasted work.
    ///
    /// # Panics
    ///
    /// Panics if the base is already asserted (the simplified base is
    /// what got blasted; changing the setting afterwards would desync
    /// plan cones and goal rewrites from the solver's clauses).
    pub fn set_presolve(&mut self, on: bool) {
        assert!(
            !self.base_asserted,
            "set_presolve must precede the first goal"
        );
        self.presolve = on;
    }

    /// Enables or disables DRAT-style proof logging for the whole
    /// session. Must precede the first goal: the base encoding has to
    /// be in the log for any goal's certificate to mean anything.
    ///
    /// # Panics
    ///
    /// Panics if the base is already asserted.
    pub fn set_proof_logging(&mut self, on: bool) {
        assert!(
            !self.base_asserted,
            "set_proof_logging must precede the first goal"
        );
        self.sat.set_proof_logging(on);
    }

    /// Adds a shared assumption. Must be called before the first goal.
    ///
    /// # Panics
    ///
    /// Panics if a goal has already been solved: the base is asserted
    /// permanently and cannot grow afterwards without changing the
    /// meaning of earlier verdicts.
    pub fn assume(&mut self, a: SBool) {
        assert!(
            !self.base_asserted,
            "session assumptions must precede the first goal"
        );
        self.base.push(a);
    }

    /// Number of goals discharged so far.
    pub fn goals_discharged(&self) -> u64 {
        self.goals
    }

    /// Announces the full (already negated) goal sequence up front,
    /// enabling goal *retirement*: after the last goal whose cone uses a
    /// term, that term's gate clauses are purged from the solver
    /// (`Solver::purge_vars`), so a long session's clause database and
    /// watch lists hold only the base, the live suffix, and useful
    /// learnts — instead of every goal ever answered. Without a plan the
    /// session is still correct, just slower on long goal streams.
    ///
    /// The subsequent `solve_negated` calls must present exactly these
    /// goals in order; on the first mismatch the plan is discarded and
    /// purging stops. Already-purged terms *may* be re-solved: purging
    /// evicts them from the blaster's memo too, so a re-mention
    /// re-encodes them with fresh variables.
    pub fn plan_goals(&mut self, neg_goals: &[SBool]) {
        assert!(self.plan.is_none() && self.goals == 0, "plan before solving");
        self.planned = Some(neg_goals.iter().map(|g| g.0).collect());
    }

    /// Builds the retirement plan once the base cone is known.
    ///
    /// `roots` are the goals as *announced* (pre-presolve) — the on-plan
    /// check in [`Session::solve_negated`] compares against what callers
    /// present. The cones walked are those of the terms actually
    /// blasted, i.e. the presolved forms when presolve is on.
    fn build_plan(&mut self, roots: Vec<TermId>) {
        let eff: Vec<TermId> = roots
            .iter()
            .map(|&r| self.effective_goal(SBool(r)).0)
            .collect();
        let mut last_use: HashMap<TermId, usize> = HashMap::new();
        let mut stack: Vec<TermId> = Vec::new();
        for (i, &r) in eff.iter().enumerate() {
            // Walk goal i's cone, overwriting earlier last-use entries;
            // base-cone terms never expire.
            let mut seen: HashSet<TermId> = HashSet::new();
            if !self.base_visited.contains(&r) && seen.insert(r) {
                stack.push(r);
            }
            while let Some(t) = stack.pop() {
                last_use.insert(t, i);
                crate::with_ctx(|c| {
                    for &ch in &c.term(t).children {
                        if !self.base_visited.contains(&ch) && seen.insert(ch) {
                            stack.push(ch);
                        }
                    }
                });
            }
        }
        let mut expiry: Vec<Vec<TermId>> = vec![Vec::new(); roots.len()];
        for (&t, &i) in &last_use {
            expiry[i].push(t);
        }
        // Mention analysis for plan-scoped variable elimination: replay
        // the announced goal sequence against the blaster's memoization
        // discipline. Blasting goal i encodes exactly the terms of its
        // cone not yet encoded; the literals such a *new* term's gate
        // clauses mention belong to the term itself and to its direct
        // children — so an already-encoded term is re-mentioned at goal
        // i iff it is a direct child of a new term (or goal i's root,
        // which the guard clause mentions). Anything else — base
        // interior gates, retired cone interiors — can only come back
        // through Ackermann congruence or a polarity-bucket flush, both
        // of which enter through `add_clause` and therefore transparently
        // reintroduce any eliminated variable they touch.
        let mut mention_until: HashMap<TermId, usize> = HashMap::new();
        let mut encoded: HashSet<TermId> = self.base_visited.clone();
        let mut walk: Vec<TermId> = Vec::new();
        for (i, &r) in eff.iter().enumerate() {
            // (A mention recorded at a term's own blast goal is
            // equivalent to no entry: the eliminability mask is built
            // after that goal's encoding, so `until == i` never keeps.)
            if encoded.insert(r) {
                walk.push(r);
            } else {
                mention_until.insert(r, i);
            }
            while let Some(t) = walk.pop() {
                crate::with_ctx(|c| {
                    for &ch in &c.term(t).children {
                        if encoded.insert(ch) {
                            walk.push(ch);
                        } else {
                            mention_until.insert(ch, i);
                        }
                    }
                });
            }
        }
        self.plan = Some(Plan {
            roots,
            last_use,
            expiry,
            mention_until,
        });
    }

    /// The form of a (negated) goal actually blasted: its presolved
    /// rewrite when presolve is on, the goal itself otherwise.
    fn effective_goal(&mut self, g: SBool) -> SBool {
        match &self.simp {
            Some(simp) if self.presolve => {
                presolve::simplify_goal_cached(simp, g, &mut self.goal_cache)
            }
            _ => g,
        }
    }

    /// Purges terms whose last planned use was the goal just answered.
    fn purge_expired(&mut self) {
        // Buggify: miss this purge round, as a deferred retirement
        // under memory pressure would. Purging is purely an
        // optimization (retired gate clauses are conservative
        // extensions either way), so every later goal's verdict must be
        // identical with or without it — the sim sweep pins that.
        if sim::buggify("session-skip-purge") {
            return;
        }
        let Some(plan) = &mut self.plan else { return };
        let i = (self.goals - 1) as usize;
        if i >= plan.expiry.len() {
            return;
        }
        let bucket = std::mem::take(&mut plan.expiry[i]);
        if bucket.is_empty() {
            return;
        }
        let mut mask = vec![false; self.sat.num_vars()];
        let mut any = false;
        for t in bucket {
            // A term sharing allocated variables with a still-live term
            // (udiv/urem of one divider circuit) is re-bucketed to the
            // partner's expiry instead.
            let defer_to = self
                .blaster
                .coupled_terms(t)
                .iter()
                .filter_map(|c| plan.last_use.get(c))
                .copied()
                .max()
                .filter(|&m| m > i);
            if let Some(m) = defer_to {
                plan.expiry[m].push(t);
            } else {
                any |= self.blaster.mark_term_vars(t, &mut mask);
                // Drop the blaster's memo entry along with the solver
                // clauses: an off-plan re-mention of this term then
                // re-encodes it with fresh variables instead of
                // referencing purged gates (see `Blaster::forget_term`).
                self.blaster.forget_term(t);
            }
        }
        if any {
            self.sat.purge_vars(&mask);
        }
    }

    /// Discharges `goal`: answers for `base ∧ ¬goal`, i.e. `Unsat` means
    /// the goal is proved under the assumptions.
    pub fn solve_goal(&mut self, goal: SBool) -> SessionOutcome {
        self.solve_negated(!goal)
    }

    /// Like [`Session::solve_goal`], but takes the *already negated*
    /// goal (the engine's session cores store `¬goal` roots directly).
    pub fn solve_negated(&mut self, neg_goal: SBool) -> SessionOutcome {
        let start = Instant::now();
        let reused_vars = self.sat.num_vars();
        let reused_clauses = self.sat.num_clauses();
        let prev = self.sat.stats();
        if !self.base_asserted {
            let base = std::mem::take(&mut self.base);
            let base = if self.presolve {
                // Presolve the shared base once; the simplified roots
                // are what gets blasted, and each goal is rewritten
                // against the same environment before encoding.
                let simp = presolve::presolve_base(&base);
                let roots = simp.roots.clone();
                self.simp = Some(simp);
                roots
            } else {
                base
            };
            // Deliberately *not* short-circuiting a constant-false base
            // assumption: asserting it makes the solver permanently
            // unsat, which answers every goal `Unsat` — the same verdict
            // the fresh path's fast-path returns, with no special case.
            for a in base {
                self.blaster.assert_true(&mut self.sat, a.0);
                self.base_roots.push(a.0);
            }
            self.base_asserted = true;
            self.base_mask = vec![false; self.sat.num_vars()];
            self.blaster.mark_cone_vars(
                self.base_roots.iter().copied(),
                &mut self.base_visited,
                &mut self.base_mask,
            );
            if let Some(roots) = self.planned.take() {
                self.build_plan(roots);
            }
        }
        // An off-plan goal disables retirement for the rest of the
        // session; anything already purged re-encodes fresh on
        // re-mention (the purge evicted the blaster memo too).
        if let Some(plan) = &self.plan {
            if plan.roots.get(self.goals as usize) != Some(&neg_goal.0) {
                self.plan = None;
            }
        }
        self.goals += 1;

        // The plan was checked against the goal as presented; what gets
        // blasted is its presolved form.
        let neg_goal = self.effective_goal(neg_goal);

        let (result, proof) = if neg_goal.is_false() {
            // Mirrors `check_full`'s constant-false fast path. The delta
            // (base encoding, prior retraction/purge steps) still needs
            // draining so an incremental checker stays in sync; `act:
            // None` marks the verdict as needing no derived conclusion.
            (CheckResult::Unsat, self.capture_proof(None))
        } else {
            let g = self.blaster.lit_of(&mut self.sat, neg_goal.0);
            self.blaster.finalize(&mut self.sat);
            // The guard uses `g` positively; flush the gate definitions
            // that polarity-aware encoding deferred for that direction.
            self.blaster.use_lit(&mut self.sat, g);
            let act = Lit::pos(self.sat.new_var());
            // Never eliminate an activation literal: retraction must
            // keep meaning "assert the unit !act".
            self.sat.freeze_var(act.var());
            self.sat.add_clause(&[!act, g]);
            // Scope VSIDS decisions to the base + this goal's cone:
            // retired goals leave their (conservative-extension) gate
            // clauses behind, and without scoping the search wanders
            // through those dead variables — the cost grows with every
            // goal the session has already answered. Out-of-scope
            // clauses are dead guards (satisfied at level 0) or gates
            // functionally determined by their inputs (with polarity
            // encoding, possibly constrained in one direction only —
            // weaker still), so Sat over the scope extends to a total
            // model; see `Solver::set_decision_scope` for the contract.
            let mut mask = self.base_mask.clone();
            mask.resize(self.sat.num_vars(), false);
            let mut visited = HashSet::new();
            self.blaster.mark_cone_vars_skipping(
                std::iter::once(neg_goal.0),
                &mut visited,
                &self.base_visited,
                &mut mask,
            );
            self.sat.set_decision_scope(Some(mask));
            // Plan-scoped eliminability: a variable becomes eliminable
            // once no future goal's encoding can mention its literals
            // (`mention_until` ≤ the goal just blasted). This admits the
            // base cone's interior — the big win: those gate variables
            // are eliminated once and stay eliminated for the whole
            // session — while keeping the shared surface (terms future
            // goals re-reference) intact. Frozen variables (activation
            // literals) and assumptions stay pinned regardless of the
            // mask. Without a plan the solver falls back to freezing
            // the whole decision scope, which still lets retraction-
            // retired cones be eliminated. Either way, a variable the
            // mask wrongly admits (an Ackermann congruence partner, a
            // late polarity-bucket flush) is transparently reintroduced
            // by `add_clause` — a retraction-safe round trip, never an
            // unsound verdict.
            if self.cfg.inprocess && self.cfg.session_bve {
                let i = (self.goals - 1) as usize;
                let elig = self.plan.as_ref().map(|plan| {
                    let mut keep = vec![false; self.sat.num_vars()];
                    for (&t, &until) in &plan.mention_until {
                        if until > i {
                            self.blaster.mark_term_vars(t, &mut keep);
                        }
                    }
                    keep.iter().map(|&k| !k).collect()
                });
                self.sat.set_eliminable(elig);
            }
            // The budget is per *goal*: the solver's budget check is
            // against cumulative conflicts, so rebase it each time.
            self.sat
                .set_conflict_budget(self.cfg.conflict_budget.map(|b| prev.conflicts + b));
            let sr = self.sat.solve_assuming(&[act]);
            // Drain the proof delta *before* retraction: on Unsat the
            // delta then ends in this goal's concluding clause, and the
            // retraction unit + sweep deletions flow into the next
            // goal's delta instead.
            let proof = self.capture_proof(Some(act));
            let result = match sr {
                SolveResult::Unsat => {
                    self.sat.retract(act);
                    CheckResult::Unsat
                }
                SolveResult::Unknown => {
                    self.sat.retract(act);
                    CheckResult::Unknown
                }
                SolveResult::Interrupted => CheckResult::Interrupted,
                SolveResult::Sat => {
                    // Extract the countermodel from the live trail
                    // *before* retracting (retraction backtracks to
                    // level 0, wiping the model).
                    let roots: Vec<TermId> = self
                        .base_roots
                        .iter()
                        .copied()
                        .chain([neg_goal.0])
                        .collect();
                    let mut model =
                        extract_model(&self.blaster, &self.sat, roots.into_iter());
                    if let Some(simp) = &self.simp {
                        // Re-derive the variables presolve eliminated.
                        presolve::complete_model(&mut model, &simp.bindings);
                    }
                    self.sat.retract(act);
                    CheckResult::Sat(Box::new(model))
                }
            };
            (result, proof)
        };
        if !matches!(result, CheckResult::Interrupted) {
            self.purge_expired();
            // The learnt budget grew to fit *this* goal's search; don't
            // let the inflated ceiling carry over, or retained learnts
            // accumulate across the whole session and tax every later
            // propagation. The next goal re-trims via reduce_db.
            self.sat.reset_learnt_budget();
        }

        let now = self.sat.stats();
        let stats = QueryStats {
            conflicts: now.conflicts - prev.conflicts,
            decisions: now.decisions - prev.decisions,
            propagations: now.propagations - prev.propagations,
            restarts: now.restarts - prev.restarts,
            learnts: now.learnts,
            // `num_clauses` can shrink below the pre-goal count when the
            // retraction sweep deletes more than this goal added.
            clauses: self.sat.num_clauses().saturating_sub(reused_clauses),
            vars: self.sat.num_vars() - reused_vars,
            reused_clauses,
            reused_vars,
            reused_learnts: prev.learnts,
            session_goals: self.goals,
            presolve_terms_in: 0,
            presolve_terms_out: 0,
            presolve_vars_in: 0,
            presolve_vars_out: 0,
            // `eliminated_vars` is a net counter (reintroduction decrements
            // it), so the per-goal delta can be negative; clamp at zero.
            eliminated_vars: now.eliminated_vars.saturating_sub(prev.eliminated_vars),
            subsumed: now.subsumed - prev.subsumed,
            strengthened: now.strengthened - prev.strengthened,
            resolvents: now.resolvents - prev.resolvents,
            cert_steps: 0,
            cert_wall: std::time::Duration::ZERO,
            wall: start.elapsed(),
        };
        SessionOutcome { result, stats, proof }
    }

    fn capture_proof(&mut self, act: Option<Lit>) -> Option<SessionProof> {
        if !self.sat.proof_logging() {
            return None;
        }
        let mut steps = self.sat.take_proof();
        crate::solver::buggify_drop_hints(&mut steps);
        Some(SessionProof { steps, act })
    }

    /// Cumulative solver statistics for the whole session.
    pub fn solver_stats(&self) -> SolverStats {
        self.sat.stats()
    }
}
