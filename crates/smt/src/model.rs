//! Models: satisfying assignments mapped back to terms.
//!
//! A [`Model`] assigns concrete values to the symbolic constants and
//! uninterpreted functions that appear in a satisfiable query, and can
//! evaluate *any* term under that assignment. Verification failures surface
//! models as counterexamples (paper §3.1); the test suites also use model
//! evaluation to cross-check the bit-blaster against the term semantics.

use crate::semantics;
use crate::term::{mask, with_ctx, Op, Sort, TermId, UfId};
use std::collections::HashMap;

/// A concrete interpretation of symbolic constants and UFs.
#[derive(Clone, Debug, Default)]
pub struct Model {
    /// Values of bitvector symbolic constants, keyed by their term id.
    pub bv_values: HashMap<TermId, u128>,
    /// Values of boolean symbolic constants, keyed by their term id.
    pub bool_values: HashMap<TermId, bool>,
    /// Per-UF graph: argument tuple → result. Arguments not present map to
    /// the default value 0.
    pub uf_tables: HashMap<UfId, HashMap<Vec<u128>, u128>>,
}

impl Model {
    /// Assigns `v` to the bitvector symbolic constant `t`.
    pub fn set_bv(&mut self, t: TermId, v: u128) {
        self.bv_values.insert(t, v);
    }

    /// Assigns `v` to the boolean symbolic constant `t`.
    pub fn set_bool(&mut self, t: TermId, v: bool) {
        self.bool_values.insert(t, v);
    }

    /// Evaluates bitvector term `t` under this model.
    pub fn eval_bv(&self, t: TermId) -> u128 {
        match self.eval(t) {
            Value::Bv(v) => v,
            Value::Bool(_) => panic!("eval_bv of a boolean term"),
        }
    }

    /// Evaluates boolean term `t` under this model.
    pub fn eval_bool(&self, t: TermId) -> bool {
        match self.eval(t) {
            Value::Bool(b) => b,
            Value::Bv(_) => panic!("eval_bool of a bitvector term"),
        }
    }

    /// Evaluates any term iteratively (deep DAG safe), memoized.
    fn eval(&self, root: TermId) -> Value {
        let mut memo: HashMap<TermId, Value> = HashMap::new();
        let mut stack = vec![root];
        while let Some(&t) = stack.last() {
            if memo.contains_key(&t) {
                stack.pop();
                continue;
            }
            let (op, children, sort) = with_ctx(|c| {
                let n = c.term(t);
                (n.op.clone(), n.children.clone(), n.sort)
            });
            let pending: Vec<TermId> = children
                .iter()
                .copied()
                .filter(|c| !memo.contains_key(c))
                .collect();
            if !pending.is_empty() {
                stack.extend(pending);
                continue;
            }
            let val = self.eval_node(t, &op, &children, sort, &memo);
            memo.insert(t, val);
            stack.pop();
        }
        memo[&root]
    }

    fn eval_node(
        &self,
        t: TermId,
        op: &Op,
        ch: &[TermId],
        sort: Sort,
        memo: &HashMap<TermId, Value>,
    ) -> Value {
        let bv = |i: usize| memo[&ch[i]].as_bv();
        let b = |i: usize| memo[&ch[i]].as_bool();
        match op {
            Op::BoolConst(v) => Value::Bool(*v),
            Op::BvConst(v) => Value::Bv(*v),
            Op::Var(_) => match sort {
                Sort::Bool => Value::Bool(*self.bool_values.get(&t).unwrap_or(&false)),
                Sort::BitVec(w) => {
                    Value::Bv(mask(w, *self.bv_values.get(&t).unwrap_or(&0)))
                }
            },
            Op::Not => Value::Bool(!b(0)),
            Op::And => Value::Bool(b(0) && b(1)),
            Op::Or => Value::Bool(b(0) || b(1)),
            Op::Xor => Value::Bool(b(0) ^ b(1)),
            Op::Iff => Value::Bool(b(0) == b(1)),
            Op::IteBool => Value::Bool(if b(0) { b(1) } else { b(2) }),
            Op::Eq | Op::Ult | Op::Ule | Op::Slt | Op::Sle => {
                let w = with_ctx(|c| c.sort(ch[0]).width());
                Value::Bool(semantics::cmp_const(op, w, bv(0), bv(1)))
            }
            Op::BvNot | Op::BvNeg => {
                Value::Bv(semantics::unop_const(op, sort.width(), bv(0)))
            }
            Op::BvAdd
            | Op::BvSub
            | Op::BvMul
            | Op::BvUdiv
            | Op::BvUrem
            | Op::BvAnd
            | Op::BvOr
            | Op::BvXor
            | Op::BvShl
            | Op::BvLshr
            | Op::BvAshr => Value::Bv(semantics::binop_const(op, sort.width(), bv(0), bv(1))),
            Op::Concat => {
                let wl = with_ctx(|c| c.sort(ch[1]).width());
                Value::Bv(mask(sort.width(), (bv(0) << wl) | mask(wl, bv(1))))
            }
            Op::Extract(_, lo) => Value::Bv(mask(sort.width(), bv(0) >> lo)),
            Op::ZeroExt => Value::Bv(bv(0)),
            Op::SignExt => {
                let wi = with_ctx(|c| c.sort(ch[0]).width());
                Value::Bv(mask(
                    sort.width(),
                    crate::term::to_signed(wi, bv(0)) as u128,
                ))
            }
            Op::IteBv => Value::Bv(if b(0) { bv(1) } else { bv(2) }),
            Op::UfApply(uf) => {
                let args: Vec<u128> = (0..ch.len()).map(bv).collect();
                let v = self
                    .uf_tables
                    .get(uf)
                    .and_then(|tbl| tbl.get(&args))
                    .copied()
                    .unwrap_or(0);
                Value::Bv(mask(sort.width(), v))
            }
        }
    }

    /// Renders the model for humans: one line per symbolic constant.
    pub fn render(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        with_ctx(|c| {
            for (&t, &v) in &self.bv_values {
                if let Op::Var(ord) = c.term(t).op {
                    lines.push(format!(
                        "  {} = {:#x} ({} bits)",
                        c.var_name(ord),
                        v,
                        c.sort(t).width()
                    ));
                }
            }
            for (&t, &v) in &self.bool_values {
                if let Op::Var(ord) = c.term(t).op {
                    lines.push(format!("  {} = {}", c.var_name(ord), v));
                }
            }
        });
        lines.sort();
        lines.join("\n")
    }
}

/// A concrete value of either sort.
#[derive(Clone, Copy, Debug)]
enum Value {
    Bool(bool),
    Bv(u128),
}

impl Value {
    fn as_bool(self) -> bool {
        match self {
            Value::Bool(b) => b,
            Value::Bv(_) => panic!("expected bool"),
        }
    }

    fn as_bv(self) -> u128 {
        match self {
            Value::Bv(v) => v,
            Value::Bool(_) => panic!("expected bv"),
        }
    }
}
