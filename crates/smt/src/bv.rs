//! Ergonomic symbolic-value wrappers: [`BV`] and [`SBool`].
//!
//! These are the values the instruction-set interpreters compute with. A
//! `BV` is a bitvector term id plus operator overloads; an `SBool` is a
//! boolean term id. Both are `Copy` and cheap — all sharing happens in the
//! hash-consed term DAG.

use crate::build;
use crate::term::TermId;
use std::fmt;
use std::ops;

/// A symbolic boolean value.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SBool(pub TermId);

/// A symbolic bitvector value of a fixed width.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct BV(pub TermId);

impl fmt::Debug for SBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.as_const() {
            Some(b) => write!(f, "{b}"),
            None => write!(f, "bool@{}", self.0 .0),
        }
    }
}

impl fmt::Debug for BV {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.as_const() {
            Some(v) => write!(f, "{:#x}:bv{}", v, self.width()),
            None => write!(f, "bv{}@{}", self.width(), self.0 .0),
        }
    }
}

impl SBool {
    /// The constant `true` or `false`.
    pub fn lit(b: bool) -> SBool {
        SBool(build::bool_const(b))
    }

    /// A fresh symbolic boolean named `name`.
    pub fn fresh(name: &str) -> SBool {
        SBool(build::fresh_bool(name))
    }

    /// The concrete value, if this is a constant.
    pub fn as_const(self) -> Option<bool> {
        build::as_bool_const(self.0)
    }

    /// Whether this is the constant `true`.
    pub fn is_true(self) -> bool {
        self.as_const() == Some(true)
    }

    /// Whether this is the constant `false`.
    pub fn is_false(self) -> bool {
        self.as_const() == Some(false)
    }

    /// Logical implication `self → other`.
    pub fn implies(self, other: SBool) -> SBool {
        SBool(build::implies(self.0, other.0))
    }

    /// Logical equivalence.
    pub fn iff(self, other: SBool) -> SBool {
        SBool(build::iff(self.0, other.0))
    }

    /// Boolean if-then-else.
    pub fn ite(self, t: SBool, e: SBool) -> SBool {
        SBool(build::ite_bool(self.0, t.0, e.0))
    }

    /// Selects between two bitvectors.
    pub fn select(self, t: BV, e: BV) -> BV {
        BV(build::ite_bv(self.0, t.0, e.0))
    }

    /// Converts to a 1-bit bitvector (`true` → 1).
    pub fn to_bv(self, w: u32) -> BV {
        self.select(BV::lit(w, 1), BV::lit(w, 0))
    }
}

impl ops::Not for SBool {
    type Output = SBool;
    fn not(self) -> SBool {
        SBool(build::not(self.0))
    }
}

impl ops::BitAnd for SBool {
    type Output = SBool;
    fn bitand(self, rhs: SBool) -> SBool {
        SBool(build::and(self.0, rhs.0))
    }
}

impl ops::BitOr for SBool {
    type Output = SBool;
    fn bitor(self, rhs: SBool) -> SBool {
        SBool(build::or(self.0, rhs.0))
    }
}

impl ops::BitXor for SBool {
    type Output = SBool;
    fn bitxor(self, rhs: SBool) -> SBool {
        SBool(build::xor(self.0, rhs.0))
    }
}

impl BV {
    /// A constant of width `w`.
    pub fn lit(w: u32, v: u128) -> BV {
        BV(build::bv_const(w, v))
    }

    /// A fresh symbolic bitvector of width `w` named `name`.
    pub fn fresh(w: u32, name: &str) -> BV {
        BV(build::fresh_bv(w, name))
    }

    /// The width in bits.
    pub fn width(self) -> u32 {
        build::width_of(self.0)
    }

    /// The concrete value, if this is a constant.
    pub fn as_const(self) -> Option<u128> {
        build::as_bv_const(self.0)
    }

    /// Whether this value is fully concrete.
    pub fn is_const(self) -> bool {
        self.as_const().is_some()
    }

    // ---- predicates ----

    /// Equality.
    pub fn eq_(self, other: BV) -> SBool {
        SBool(build::eq(self.0, other.0))
    }

    /// Disequality.
    pub fn ne_(self, other: BV) -> SBool {
        SBool(build::ne(self.0, other.0))
    }

    /// Unsigned less-than.
    pub fn ult(self, other: BV) -> SBool {
        SBool(build::ult(self.0, other.0))
    }

    /// Unsigned less-or-equal.
    pub fn ule(self, other: BV) -> SBool {
        SBool(build::ule(self.0, other.0))
    }

    /// Unsigned greater-than.
    pub fn ugt(self, other: BV) -> SBool {
        other.ult(self)
    }

    /// Unsigned greater-or-equal.
    pub fn uge(self, other: BV) -> SBool {
        other.ule(self)
    }

    /// Signed less-than.
    pub fn slt(self, other: BV) -> SBool {
        SBool(build::slt(self.0, other.0))
    }

    /// Signed less-or-equal.
    pub fn sle(self, other: BV) -> SBool {
        SBool(build::sle(self.0, other.0))
    }

    /// Signed greater-than.
    pub fn sgt(self, other: BV) -> SBool {
        other.slt(self)
    }

    /// Signed greater-or-equal.
    pub fn sge(self, other: BV) -> SBool {
        other.sle(self)
    }

    /// Whether the value is zero.
    pub fn is_zero(self) -> SBool {
        self.eq_(BV::lit(self.width(), 0))
    }

    // ---- arithmetic not covered by operator overloads ----

    /// Unsigned division (division by zero yields all-ones).
    pub fn udiv(self, other: BV) -> BV {
        BV(build::bvudiv(self.0, other.0))
    }

    /// Unsigned remainder (remainder by zero yields the dividend).
    pub fn urem(self, other: BV) -> BV {
        BV(build::bvurem(self.0, other.0))
    }

    /// Signed division (SMT-LIB `bvsdiv`).
    pub fn sdiv(self, other: BV) -> BV {
        BV(build::bvsdiv(self.0, other.0))
    }

    /// Signed remainder (SMT-LIB `bvsrem`).
    pub fn srem(self, other: BV) -> BV {
        BV(build::bvsrem(self.0, other.0))
    }

    /// Two's-complement negation.
    pub fn neg(self) -> BV {
        BV(build::bvneg(self.0))
    }

    /// Logical shift left.
    pub fn shl(self, amount: BV) -> BV {
        BV(build::bvshl(self.0, amount.0))
    }

    /// Logical shift right.
    pub fn lshr(self, amount: BV) -> BV {
        BV(build::bvlshr(self.0, amount.0))
    }

    /// Arithmetic shift right.
    pub fn ashr(self, amount: BV) -> BV {
        BV(build::bvashr(self.0, amount.0))
    }

    // ---- structure ----

    /// Concatenates `self` (high bits) with `lo`.
    pub fn concat(self, lo: BV) -> BV {
        BV(build::concat(self.0, lo.0))
    }

    /// Extracts bits `[hi:lo]` inclusive.
    pub fn extract(self, hi: u32, lo: u32) -> BV {
        BV(build::extract(hi, lo, self.0))
    }

    /// Zero-extends to `w` bits.
    pub fn zext(self, w: u32) -> BV {
        BV(build::zext(w, self.0))
    }

    /// Sign-extends to `w` bits.
    pub fn sext(self, w: u32) -> BV {
        BV(build::sext(w, self.0))
    }

    /// Truncates to the low `w` bits.
    pub fn trunc(self, w: u32) -> BV {
        self.extract(w - 1, 0)
    }
}

impl ops::Add for BV {
    type Output = BV;
    fn add(self, rhs: BV) -> BV {
        BV(build::bvadd(self.0, rhs.0))
    }
}

impl ops::Sub for BV {
    type Output = BV;
    fn sub(self, rhs: BV) -> BV {
        BV(build::bvsub(self.0, rhs.0))
    }
}

impl ops::Mul for BV {
    type Output = BV;
    fn mul(self, rhs: BV) -> BV {
        BV(build::bvmul(self.0, rhs.0))
    }
}

impl ops::BitAnd for BV {
    type Output = BV;
    fn bitand(self, rhs: BV) -> BV {
        BV(build::bvand(self.0, rhs.0))
    }
}

impl ops::BitOr for BV {
    type Output = BV;
    fn bitor(self, rhs: BV) -> BV {
        BV(build::bvor(self.0, rhs.0))
    }
}

impl ops::BitXor for BV {
    type Output = BV;
    fn bitxor(self, rhs: BV) -> BV {
        BV(build::bvxor(self.0, rhs.0))
    }
}

impl ops::Not for BV {
    type Output = BV;
    fn not(self) -> BV {
        BV(build::bvnot(self.0))
    }
}
