//! The ToyRISC instruction set and its lifted verifier (paper §3.2–§3.3).
//!
//! ToyRISC is the paper's five-instruction teaching ISA (Fig. 2): `ret`,
//! `bnez`, `sgtz`, `sltz`, `li`, over a program counter and two integer
//! registers `a0`/`a1`. This crate reproduces the §3 walkthrough:
//!
//! - an interpreter that is also a verifier when run on symbolic state
//!   ([`ToyRisc::interpret`], Fig. 4);
//! - the sign program (Fig. 3) as [`sign_program`];
//! - the `split-pc` symbolic optimization and the merged-pc baseline whose
//!   pathology the symbolic profiler exposes (§3.2);
//! - the refinement and step-consistency proofs of §3.3
//!   ([`prove_sign_refinement`], [`prove_sign_step_consistency`]).

use serval_core::{split_pc, BugOn};
use serval_core::report::ProofReport;
use serval_core::spec::{prove_refinement, prove_step_consistency, Refinement};
use serval_smt::solver::SolverConfig;
use serval_smt::{SBool, BV};
use serval_sym::{Merge, SymCtx};

/// Register names.
pub const A0: usize = 0;
/// Scratch register.
pub const A1: usize = 1;

/// A ToyRISC instruction (paper Fig. 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Insn {
    /// End execution; `pc ← 0`.
    Ret,
    /// Branch to `imm` if register `rs` is nonzero.
    Bnez(usize, u64),
    /// `rd ← 1` if `rs > 0` (signed) else `0`; `pc ← pc + 1`.
    Sgtz(usize, usize),
    /// `rd ← 1` if `rs < 0` (signed) else `0`; `pc ← pc + 1`.
    Sltz(usize, usize),
    /// Load immediate.
    Li(usize, i64),
}

/// ToyRISC machine state: a 64-bit program counter and two 64-bit
/// registers.
#[derive(Clone, Debug)]
pub struct Cpu {
    /// Program counter (an instruction index, not a byte address).
    pub pc: BV,
    /// Integer registers `a0`, `a1`.
    pub regs: Vec<BV>,
}

impl Cpu {
    /// A CPU at `pc = 0` with the given register values.
    pub fn new(a0: BV, a1: BV) -> Cpu {
        Cpu {
            pc: BV::lit(64, 0),
            regs: vec![a0, a1],
        }
    }

    /// A CPU with fully symbolic registers (for verification).
    pub fn fresh(tag: &str) -> Cpu {
        Cpu::new(
            BV::fresh(64, &format!("{tag}.a0")),
            BV::fresh(64, &format!("{tag}.a1")),
        )
    }
}

impl Merge for Cpu {
    fn merge(cond: SBool, t: &Self, e: &Self) -> Self {
        Cpu {
            pc: BV::merge(cond, &t.pc, &e.pc),
            regs: Vec::merge(cond, &t.regs, &e.regs),
        }
    }
}

/// Evaluation outcome: records whether any path exhausted its fuel, which
/// corresponds to divergence of symbolic evaluation in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// True if some path ran out of fuel before reaching `ret`.
    pub diverged: bool,
    /// Number of instructions executed on the longest path.
    pub steps: usize,
}

impl Merge for Outcome {
    fn merge(_cond: SBool, t: &Self, e: &Self) -> Self {
        Outcome {
            diverged: t.diverged || e.diverged,
            steps: t.steps.max(e.steps),
        }
    }
}

/// The ToyRISC interpreter/verifier (paper Fig. 4).
pub struct ToyRisc {
    /// The program to run.
    pub program: Vec<Insn>,
    /// Apply the `split-pc` symbolic optimization before each fetch.
    pub use_split_pc: bool,
    /// Evaluation fuel: maximum instructions per path.
    pub fuel: usize,
}

impl ToyRisc {
    /// A verifier for `program` with `split-pc` enabled.
    pub fn new(program: Vec<Insn>) -> ToyRisc {
        ToyRisc {
            program,
            use_split_pc: true,
            fuel: 64,
        }
    }

    /// Interprets from `cpu` until every path executes `ret` (or fuel runs
    /// out). On symbolic state this is all-paths symbolic evaluation; the
    /// interpreter doubles as a CPU emulator on concrete state.
    pub fn interpret(&self, ctx: &mut SymCtx, cpu: &mut Cpu) -> Outcome {
        self.step(ctx, cpu, self.fuel)
    }

    fn step(&self, ctx: &mut SymCtx, cpu: &mut Cpu, fuel: usize) -> Outcome {
        if fuel == 0 {
            return Outcome {
                diverged: true,
                steps: 0,
            };
        }
        let n = self.program.len() as u128;
        // The behavior is undefined if pc is out of bounds (Fig. 4).
        ctx.bug_on(cpu.pc.uge(BV::lit(64, n)), "pc out of bounds");
        let pc = cpu.pc;
        if self.use_split_pc {
            // split-pc: enumerate only the concrete values pc can take.
            let r = ctx.profile("fetch", |ctx| {
                split_pc(ctx, cpu, pc, |ctx, cpu, v| {
                    if v >= n {
                        // Covered by the bug-on above; stop this path.
                        return Outcome { diverged: false, steps: 0 };
                    }
                    self.execute_at(ctx, cpu, v as usize, fuel)
                })
            });
            r.expect("ToyRISC pc is never opaque")
        } else {
            // Merged-pc baseline: like Rosette's `vector-ref` on a merged
            // pc, the fetch considers every program index at every step
            // (§3.2's pathology). The guards are deliberately opaque
            // (uge ∧ ule) so the term layer cannot prune infeasible
            // indices — that pruning is exactly what `split-pc` adds.
            let cases: Vec<(SBool, u128)> = (0..n)
                .map(|i| {
                    let iv = BV::lit(64, i);
                    (pc.uge(iv) & pc.ule(iv), i)
                })
                .collect();
            ctx.profile("fetch", |ctx| {
                ctx.split(cpu, &cases, |ctx, cpu, i| {
                    self.execute_at(ctx, cpu, i as usize, fuel)
                })
            })
        }
    }

    fn execute_at(&self, ctx: &mut SymCtx, cpu: &mut Cpu, idx: usize, fuel: usize) -> Outcome {
        let insn = self.program[idx];
        let halted = ctx.profile("execute", |ctx| {
            // pc is concrete on this path.
            cpu.pc = BV::lit(64, idx as u128);
            self.execute(ctx, cpu, insn)
        });
        if halted {
            Outcome {
                diverged: false,
                steps: 1,
            }
        } else {
            let mut o = self.step(ctx, cpu, fuel - 1);
            o.steps += 1;
            o
        }
    }

    /// Executes one instruction; returns whether it was `ret`.
    fn execute(&self, ctx: &mut SymCtx, cpu: &mut Cpu, insn: Insn) -> bool {
        let one = BV::lit(64, 1);
        let zero = BV::lit(64, 0);
        match insn {
            Insn::Ret => {
                cpu.pc = zero;
                true
            }
            Insn::Bnez(rs, imm) => {
                let taken = cpu.regs[rs].ne_(zero);
                let next = cpu.pc + one;
                // A branch is a state merge: both targets fold into an
                // ite-valued pc (Fig. 5, state s6).
                cpu.pc = taken.select(BV::lit(64, imm as u128), next);
                let _ = ctx;
                false
            }
            Insn::Sgtz(rd, rs) => {
                cpu.pc = cpu.pc + one;
                cpu.regs[rd] = cpu.regs[rs].sgt(zero).select(one, zero);
                false
            }
            Insn::Sltz(rd, rs) => {
                cpu.pc = cpu.pc + one;
                cpu.regs[rd] = cpu.regs[rs].slt(zero).select(one, zero);
                false
            }
            Insn::Li(rd, imm) => {
                cpu.pc = cpu.pc + one;
                cpu.regs[rd] = BV::lit(64, imm as u64 as u128);
                false
            }
        }
    }
}

/// The sign program of paper Fig. 3: computes the sign of `a0` into `a0`,
/// clobbering `a1`.
pub fn sign_program() -> Vec<Insn> {
    vec![
        Insn::Sltz(A1, A0),    // 0: a1 <- (a0 < 0)
        Insn::Bnez(A1, 4),     // 1: branch to 4 if a1 != 0
        Insn::Sgtz(A0, A0),    // 2: a0 <- (a0 > 0)
        Insn::Ret,             // 3
        Insn::Li(A0, -1),      // 4: a0 <- -1
        Insn::Ret,             // 5
    ]
}

// ---------------------------------------------------------------------
// Specification (paper §3.3)
// ---------------------------------------------------------------------

/// Specification state for the sign program.
#[derive(Clone, Debug)]
pub struct SignState {
    /// Abstract `a0`.
    pub a0: BV,
    /// Abstract `a1` (scratch).
    pub a1: BV,
}

impl Merge for SignState {
    fn merge(cond: SBool, t: &Self, e: &Self) -> Self {
        SignState {
            a0: BV::merge(cond, &t.a0, &e.a0),
            a1: BV::merge(cond, &t.a1, &e.a1),
        }
    }
}

/// The functional specification `spec-sign` (paper §3.3): the detailed
/// variant that also pins the scratch register.
pub fn spec_sign(s: &SignState) -> SignState {
    let zero = BV::lit(64, 0);
    let one = BV::lit(64, 1);
    let minus_one = BV::lit(64, u64::MAX as u128);
    let sign = s
        .a0
        .sgt(zero)
        .select(one, s.a0.slt(zero).select(minus_one, zero));
    let scratch = s.a0.slt(zero).select(one, zero);
    SignState {
        a0: sign,
        a1: scratch,
    }
}

/// The refinement instance for the sign program.
pub struct SignRefinement {
    /// Verifier configuration under test.
    pub verifier: ToyRisc,
}

impl Refinement for SignRefinement {
    type Impl = Cpu;
    type Spec = SignState;

    fn fresh_impl(&self, _ctx: &mut SymCtx) -> Cpu {
        Cpu::fresh("impl")
    }

    /// RI: the machine is at the entry point (paper: `pc = 0`).
    fn rep_invariant(&self, c: &Cpu) -> SBool {
        c.pc.eq_(BV::lit(64, 0))
    }

    /// AF: registers map directly to specification state.
    fn abstraction(&self, c: &Cpu) -> SignState {
        SignState {
            a0: c.regs[A0],
            a1: c.regs[A1],
        }
    }

    fn spec_eq(&self, a: &SignState, b: &SignState) -> SBool {
        a.a0.eq_(b.a0) & a.a1.eq_(b.a1)
    }

    fn run_impl(&self, ctx: &mut SymCtx, c: &mut Cpu) {
        let o = self.verifier.interpret(ctx, c);
        assert!(!o.diverged, "symbolic evaluation diverged");
    }

    fn run_spec(&self, _ctx: &mut SymCtx, s: &mut SignState) {
        *s = spec_sign(s);
    }
}

/// Proves functional correctness of the sign program by state-machine
/// refinement (paper §3.3).
pub fn prove_sign_refinement(cfg: SolverConfig) -> ProofReport {
    let r = SignRefinement {
        verifier: ToyRisc::new(sign_program()),
    };
    prove_refinement(&r, cfg, "sign")
}

/// Proves step consistency for `spec-sign` (paper §3.3): the result
/// depends only on `a0`, never on the initial scratch register.
pub fn prove_sign_step_consistency(cfg: SolverConfig) -> ProofReport {
    prove_step_consistency(
        cfg,
        "sign: step consistency",
        |_, tag| SignState {
            a0: BV::fresh(64, &format!("{tag}.a0")),
            a1: BV::fresh(64, &format!("{tag}.a1")),
        },
        |_, s| *s = spec_sign(s),
        |s1, s2| s1.a0.eq_(s2.a0),
        |_| SBool::lit(true),
    )
}

#[cfg(test)]
mod tests;
