//! Tests reproducing the paper's §3 walkthrough end-to-end.

use crate::*;
use serval_smt::solver::SolverConfig;
use serval_smt::{reset_ctx, verify};

/// The interpreter behaves as a regular CPU emulator on concrete state
/// (paper §3.2: pc=0, a0=42 results in a0=1).
#[test]
fn concrete_emulation() {
    for (a0, expect) in [(42i64, 1i64), (-5, -1), (0, 0), (i64::MIN, -1), (i64::MAX, 1)] {
        reset_ctx();
        let mut ctx = SymCtx::new();
        let t = ToyRisc::new(sign_program());
        let mut cpu = Cpu::new(BV::lit(64, a0 as u64 as u128), BV::lit(64, 0));
        let o = t.interpret(&mut ctx, &mut cpu);
        assert!(!o.diverged);
        assert_eq!(
            cpu.regs[A0].as_const(),
            Some(expect as u64 as u128),
            "sign({a0})"
        );
        assert_eq!(cpu.pc.as_const(), Some(0), "ret resets pc");
    }
}

/// Symbolic evaluation covers all behaviors: the final a0 equals the
/// specification's sign for arbitrary inputs (Fig. 5's full tree).
#[test]
fn symbolic_run_matches_spec() {
    reset_ctx();
    let mut ctx = SymCtx::new();
    let t = ToyRisc::new(sign_program());
    let mut cpu = Cpu::fresh("cpu");
    let s0 = SignState {
        a0: cpu.regs[A0],
        a1: cpu.regs[A1],
    };
    let o = t.interpret(&mut ctx, &mut cpu);
    assert!(!o.diverged);
    let s1 = spec_sign(&s0);
    assert!(verify(&[], cpu.regs[A0].eq_(s1.a0)).is_proved());
    assert!(verify(&[], cpu.regs[A1].eq_(s1.a1)).is_proved());
}

/// The full §3.3 refinement proof: UB absence, RI preservation, lock-step
/// commutation with the functional specification.
#[test]
fn sign_refinement_proves() {
    reset_ctx();
    let report = prove_sign_refinement(SolverConfig::default());
    assert!(report.all_proved(), "\n{}", report.render());
    // It proves all three obligations plus the bug-on checks.
    assert!(report.theorems.len() >= 3);
}

/// Step consistency (noninterference sanity check on the spec, §3.3).
#[test]
fn sign_step_consistency_proves() {
    reset_ctx();
    let report = prove_sign_step_consistency(SolverConfig::default());
    assert!(report.all_proved(), "\n{}", report.render());
}

/// A wrong specification is rejected with a counterexample.
#[test]
fn wrong_spec_rejected() {
    reset_ctx();
    let mut ctx = SymCtx::new();
    let t = ToyRisc::new(sign_program());
    let mut cpu = Cpu::fresh("cpu");
    let a0 = cpu.regs[A0];
    t.interpret(&mut ctx, &mut cpu);
    // Claim: the result is always 1. Must fail for a0 <= 0.
    match verify(&[], cpu.regs[A0].eq_(BV::lit(64, 1))) {
        serval_smt::VerifyResult::Counterexample(m) => {
            let v = m.eval_bv(a0.0) as u64 as i64;
            assert!(v <= 0, "counterexample must be non-positive, got {v}");
        }
        r => panic!("expected counterexample, got {r:?}"),
    }
}

/// A buggy program (missing the negative branch) fails refinement.
#[test]
fn buggy_program_fails_refinement() {
    reset_ctx();
    let buggy = vec![
        Insn::Sltz(A1, A0),
        // bnez omitted: negative inputs fall through to sgtz.
        Insn::Sgtz(A0, A0),
        Insn::Ret,
    ];
    let r = SignRefinement {
        verifier: ToyRisc::new(buggy),
    };
    let report = serval_core::spec::prove_refinement(&r, SolverConfig::default(), "buggy");
    assert!(!report.all_proved(), "bug must be caught");
}

/// §3.2: without split-pc the verifier explores every program location at
/// every step; the profiler ranks the fetch region at the top, exactly the
/// red flag the paper describes. With split-pc the fetch work collapses.
#[test]
fn profiler_finds_symbolic_pc_bottleneck() {
    reset_ctx();
    let mut ctx_no = SymCtx::new();
    let mut t = ToyRisc::new(sign_program());
    t.use_split_pc = false;
    t.fuel = 6; // merged-pc evaluation explores ~6^fuel nodes
    let mut cpu = Cpu::fresh("cpu");
    let o = t.interpret(&mut ctx_no, &mut cpu);
    assert!(o.diverged, "merged-pc evaluation cannot terminate (paper §3.2)");
    let splits_no = ctx_no.profiler.total_splits();

    reset_ctx();
    let mut ctx_yes = SymCtx::new();
    let t2 = ToyRisc::new(sign_program());
    let mut cpu2 = Cpu::fresh("cpu");
    t2.interpret(&mut ctx_yes, &mut cpu2);
    let splits_yes = ctx_yes.profiler.total_splits();

    assert!(
        splits_no > 2 * splits_yes,
        "merged-pc evaluation must split far more ({splits_no} vs {splits_yes})"
    );
}

/// Both evaluation strategies compute the same final state on every
/// feasible path (infeasible merged-pc paths carry false guards).
#[test]
fn split_pc_preserves_semantics() {
    reset_ctx();
    let mut ctx = SymCtx::new();
    let x = BV::fresh(64, "x");
    let mut with_split = Cpu::new(x, BV::lit(64, 0));
    let mut without = with_split.clone();
    let mut t = ToyRisc::new(sign_program());
    t.interpret(&mut ctx, &mut with_split);
    t.use_split_pc = false;
    t.fuel = 6;
    t.interpret(&mut ctx, &mut without);
    assert!(verify(&[], with_split.regs[A0].eq_(without.regs[A0])).is_proved());
    assert!(verify(&[], with_split.regs[A1].eq_(without.regs[A1])).is_proved());
}

/// Fuel exhaustion reports divergence (infinite loop program).
#[test]
fn infinite_loop_diverges() {
    reset_ctx();
    let mut ctx = SymCtx::new();
    let looping = vec![Insn::Bnez(A0, 0), Insn::Ret];
    let mut t = ToyRisc::new(looping);
    t.fuel = 16;
    let mut cpu = Cpu::fresh("cpu");
    let o = t.interpret(&mut ctx, &mut cpu);
    assert!(o.diverged, "unbounded loop must exhaust fuel");
}

/// Out-of-bounds pc is caught by the bug-on check.
#[test]
fn out_of_bounds_pc_flagged() {
    reset_ctx();
    let mut ctx = SymCtx::new();
    let t = ToyRisc::new(vec![Insn::Bnez(A0, 99), Insn::Ret]);
    let mut cpu = Cpu::fresh("cpu");
    t.interpret(&mut ctx, &mut cpu);
    let failed = ctx
        .take_obligations()
        .into_iter()
        .any(|ob| !verify(&[], ob.condition).is_proved());
    assert!(failed, "jump to 99 must violate the pc bounds bug-on");
}
