//! Self-tests for the property-testing substrate: fixed-seed
//! reproducibility, shrink convergence on known-failing properties,
//! generator distribution sanity, and the macro surface itself.

use crate::data::DataSource;
use crate::prelude::*;
use crate::rng::Rng;
use crate::runner::{run_property_result, ProptestConfig};

fn cfg(cases: u32) -> ProptestConfig {
    // Pin the seed explicitly so these tests are immune to a
    // SERVAL_CHECK_SEED set in the environment... which run_property
    // honours; assert against the strategy layer directly where that
    // matters.
    ProptestConfig { cases, ..Default::default() }
}

// ---------------------------------------------------------------------
// Reproducibility
// ---------------------------------------------------------------------

/// Same seed ⇒ the same case sequence, draw for draw.
#[test]
fn fixed_seed_reproduces_case_sequence() {
    let strat = (
        0u32..1000,
        any::<bool>(),
        prop::collection::vec(-50i32..50, 0..8),
    );
    let gen_sequence = |seed: u64| -> Vec<(u32, bool, Vec<i32>)> {
        let mut rng = Rng::from_seed(seed);
        (0..64)
            .map(|_| {
                let mut src = DataSource::random(rng.split());
                strat.generate(&mut src)
            })
            .collect()
    };
    assert_eq!(gen_sequence(42), gen_sequence(42));
    assert_ne!(gen_sequence(42), gen_sequence(43), "different seeds differ");
}

/// The runner itself is deterministic: the same failing property shrinks
/// to the same minimal counterexample on every run.
#[test]
fn runner_failures_are_reproducible() {
    let run = || {
        run_property_result(&cfg(256), "repro", &(0u64..100_000,), |(x,)| {
            assert!(x < 1000, "tripped");
        })
        .expect_err("property must fail")
    };
    let a = run();
    let b = run();
    assert_eq!(a.minimal, b.minimal);
    assert_eq!(a.case, b.case);
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

/// A range property failing above a threshold must shrink exactly to the
/// threshold (the minimal counterexample).
#[test]
fn shrink_converges_to_integer_threshold() {
    let f = run_property_result(&cfg(512), "int_min", &(0u64..10_000,), |(x,)| {
        assert!(x < 137, "x too big");
    })
    .expect_err("property must fail");
    assert_eq!(f.minimal.0, 137, "must shrink to the smallest failing value");
}

/// A vector-length property must shrink to the shortest failing vector
/// with all-minimal elements.
#[test]
fn shrink_converges_to_minimal_vector() {
    let strat = (prop::collection::vec(0u32..100, 0..20),);
    let f = run_property_result(&cfg(512), "vec_min", &strat, |(v,)| {
        assert!(v.len() < 3, "vector too long");
    })
    .expect_err("property must fail");
    assert_eq!(f.minimal.0, vec![0, 0, 0]);
}

/// Shrinking works through prop_map and prop_oneof: a mapped/unioned
/// strategy still converges to the simplest failing shape.
#[test]
fn shrink_composes_through_map_and_oneof() {
    let strat = (prop_oneof![
        (0u32..1000).prop_map(|x| x * 2),          // even
        (0u32..1000).prop_map(|x| x * 2 + 1),      // odd
    ],);
    let f = run_property_result(&cfg(512), "map_min", &strat, |(x,)| {
        assert!(x < 10, "too big");
    })
    .expect_err("property must fail");
    // Minimal failing value overall is 10 (first arm, x = 5).
    assert_eq!(f.minimal.0, 10);
}

/// The failure report carries the panic message of the *minimal* case.
#[test]
fn failure_carries_message_and_seed() {
    let f = run_property_result(&cfg(64), "msg", &(0u8..255,), |(x,)| {
        prop_assert!(x < 17, "boom at {}", x);
    })
    .expect_err("property must fail");
    assert_eq!(f.minimal.0, 17);
    assert_eq!(f.message, "boom at 17");
}

// ---------------------------------------------------------------------
// Distribution sanity
// ---------------------------------------------------------------------

#[test]
fn bool_distribution_is_balanced() {
    let mut rng = Rng::from_seed(7);
    let mut src = DataSource::random(rng.split());
    let strat = any::<bool>();
    let n = 10_000;
    let trues = (0..n).filter(|_| strat.generate(&mut src)).count();
    let frac = trues as f64 / n as f64;
    assert!((0.45..0.55).contains(&frac), "bool bias: {frac}");
}

#[test]
fn range_distribution_covers_buckets() {
    let mut rng = Rng::from_seed(8);
    let mut src = DataSource::random(rng.split());
    let strat = 0u32..100;
    let mut buckets = [0usize; 10];
    let n = 10_000;
    for _ in 0..n {
        let v = strat.generate(&mut src);
        assert!(v < 100);
        buckets[(v / 10) as usize] += 1;
    }
    for (i, &b) in buckets.iter().enumerate() {
        assert!(
            (600..=1400).contains(&b),
            "bucket {i} count {b} outside loose uniformity bounds"
        );
    }
}

#[test]
fn signed_range_and_full_width_cover_extremes() {
    let mut rng = Rng::from_seed(9);
    let mut src = DataSource::random(rng.split());
    let strat = -2048i32..2048;
    let mut saw_neg = false;
    let mut saw_pos = false;
    for _ in 0..1000 {
        let v = strat.generate(&mut src);
        assert!((-2048..2048).contains(&v));
        saw_neg |= v < 0;
        saw_pos |= v > 0;
    }
    assert!(saw_neg && saw_pos);
    // any::<u64> hits both halves of the domain.
    let full = any::<u64>();
    let high = (0..1000).filter(|_| full.generate(&mut src) >= 1 << 63).count();
    assert!((350..=650).contains(&high), "top-bit bias: {high}/1000");
}

#[test]
fn select_union_and_bv_stay_in_domain() {
    let mut rng = Rng::from_seed(10);
    let mut src = DataSource::random(rng.split());
    let sel = prop::sample::select(vec![3u8, 5, 7]);
    let mut seen = [false; 3];
    for _ in 0..200 {
        match sel.generate(&mut src) {
            3 => seen[0] = true,
            5 => seen[1] = true,
            7 => seen[2] = true,
            v => panic!("select produced {v}"),
        }
    }
    assert_eq!(seen, [true; 3], "select must eventually hit every item");
    let bv = prop::bits::bv(12);
    for _ in 0..200 {
        assert!(bv.generate(&mut src) < (1 << 12));
    }
    let bv = prop::bits::bv(128);
    let mut wide = false;
    for _ in 0..64 {
        wide |= bv.generate(&mut src) > u64::MAX as u128;
    }
    assert!(wide, "128-bit generator must use the high half");
}

// ---------------------------------------------------------------------
// Macro surface (the compatibility contract the migrated suites rely on)
// ---------------------------------------------------------------------

fn composite() -> impl Strategy<Value = Vec<(u8, bool)>> {
    prop::collection::vec((any::<u8>(), any::<bool>()), 1..=4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Tuples, ranges, any, and trailing commas all parse and run.
    #[test]
    fn macro_surface_runs(
        xs in composite(),
        k in 0u16..4096,
        signed in -2048i32..2048,
        flag in any::<bool>(),
    ) {
        prop_assert!(!xs.is_empty() && xs.len() <= 4);
        prop_assert!(k < 4096);
        prop_assert!((-2048..2048).contains(&signed));
        prop_assert_eq!(flag, flag);
        prop_assert_ne!(xs.len(), 0, "checked non-empty above: {:?}", xs);
    }

    #[test]
    fn oneof_flat_map_and_just(
        v in prop_oneof![
            Just(0u32),
            (1u32..10).prop_flat_map(|n| (Just(n), 0u32..100).prop_map(|(n, x)| n * 100 + x)),
        ]
    ) {
        prop_assert!(v == 0 || (100..1100).contains(&v));
    }
}
