//! The property-test runner: case generation, failure detection, and
//! choice-list shrinking.
//!
//! Determinism: the default seed is a fixed constant, so a test binary
//! produces the same case sequence on every run and every machine. Set
//! `SERVAL_CHECK_SEED=<u64>` to explore a different stream, and
//! `SERVAL_CHECK_CASES=<n>` to override case counts globally (e.g. a
//! quick CI smoke pass). Each property's stream is additionally salted
//! with a hash of its name so sibling properties are decorrelated.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::data::DataSource;
use crate::rng::{hash_name, Rng, SplitMix64};
use crate::strategy::Strategy;

/// The fixed default seed: determinism out of the box.
pub const DEFAULT_SEED: u64 = 0x5e77_a1c0_5e7a_11ed;

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Upper bound on shrink candidate executions after a failure.
    pub max_shrink_iters: u32,
    /// Root seed (salted per property by the property name).
    pub seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 4096, seed: DEFAULT_SEED }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

/// A fully shrunk property failure.
#[derive(Debug)]
pub struct Failure<V> {
    /// The minimal failing input (after shrinking).
    pub minimal: V,
    /// Panic message produced by the minimal input.
    pub message: String,
    /// The effective root seed (reproduce with `SERVAL_CHECK_SEED`).
    pub seed: u64,
    /// 0-based index of the first failing case.
    pub case: u32,
    /// Shrink candidates executed.
    pub shrink_iters: u32,
}

fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

thread_local! {
    static QUIET_PANICS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Silences the default panic hook on this thread while `f` runs, so
/// the many expected panics caught during case execution and shrinking
/// don't spam stderr with backtraces. The hook is swapped once per
/// process for a forwarding hook gated on a thread-local, keeping other
/// threads' panics untouched.
fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            QUIET_PANICS.with(|q| q.set(self.0));
        }
    }
    let _reset = Reset(QUIET_PANICS.with(|q| q.replace(true)));
    f()
}

/// Replays `choices` through the strategy and the test closure.
/// `Ok(consumed)` means the test passed; `Err((consumed, msg))` carries
/// the panic message and the canonical (reduced, truncated-to-consumed)
/// choice list actually used.
fn run_once<S: Strategy, F: Fn(S::Value)>(
    strat: &S,
    test: &F,
    choices: Vec<u64>,
) -> Result<Vec<u64>, (Vec<u64>, String)> {
    let mut src = DataSource::replay(choices);
    let value = strat.generate(&mut src);
    let consumed = src.into_record();
    match catch_unwind(AssertUnwindSafe(|| test(value))) {
        Ok(()) => Ok(consumed),
        Err(e) => Err((consumed, panic_message(e))),
    }
}

/// Shortlex order on choice lists: shorter is strictly simpler; at equal
/// length, lexicographically smaller is simpler. Accepting only
/// strictly-simpler candidates guarantees shrinking always progresses
/// (replay pads exhausted lists with zeros, so a candidate's *consumed*
/// record can be longer than the candidate itself).
fn simpler(a: &[u64], b: &[u64]) -> bool {
    a.len() < b.len() || (a.len() == b.len() && a < b)
}

/// Shrinks a failing choice list: alternating passes of block deletion
/// and per-choice minimization (zero, then binary search), to a
/// fixpoint or the iteration budget.
fn shrink<S: Strategy, F: Fn(S::Value)>(
    cfg: &ProptestConfig,
    strat: &S,
    test: &F,
    mut best: Vec<u64>,
    mut best_msg: String,
) -> (Vec<u64>, String, u32) {
    let mut iters: u32 = 0;
    macro_rules! attempt {
        ($cand:expr) => {{
            iters += 1;
            match run_once(strat, test, $cand) {
                Err((consumed, msg)) if simpler(&consumed, &best) => {
                    best = consumed;
                    best_msg = msg;
                    true
                }
                _ => false,
            }
        }};
    }

    loop {
        let mut improved = false;

        // Pass 1: delete contiguous blocks, large to small. Removing a
        // block drops generated substructure (e.g. vector elements);
        // replay pads with zeros if generation overruns the shorter list.
        let mut size = (best.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start + size <= best.len() && iters < cfg.max_shrink_iters {
                let mut cand = best.clone();
                cand.drain(start..start + size);
                if attempt!(cand) {
                    improved = true;
                    // best changed (and may be shorter); retry same start.
                } else {
                    start += size;
                }
            }
            if size == 1 {
                break;
            }
            size /= 2;
        }

        // Pass 2: minimize individual choices — try 0, then binary
        // search between the largest known-passing and the current
        // failing value.
        let mut i = 0;
        while i < best.len() && iters < cfg.max_shrink_iters {
            let cur = best[i];
            if cur != 0 {
                let mut cand = best.clone();
                cand[i] = 0;
                if attempt!(cand) {
                    improved = true;
                } else {
                    // 0 passes, `cur` fails: bisect toward the smallest
                    // failing choice at this position.
                    let (mut lo, mut hi) = (0u64, cur);
                    while hi - lo > 1 && iters < cfg.max_shrink_iters {
                        let mid = lo + (hi - lo) / 2;
                        if i >= best.len() {
                            break;
                        }
                        let mut cand = best.clone();
                        cand[i] = mid;
                        if attempt!(cand) {
                            improved = true;
                            hi = mid;
                        } else {
                            lo = mid;
                        }
                    }
                }
            }
            i += 1;
        }

        if !improved || iters >= cfg.max_shrink_iters {
            return (best, best_msg, iters);
        }
    }
}

/// Runs a property to completion, returning the shrunk failure if any.
/// This is the inspectable core of [`run_property`]; the self-tests use
/// it to assert shrinking quality without unwinding.
pub fn run_property_result<S: Strategy, F: Fn(S::Value)>(
    cfg: &ProptestConfig,
    name: &str,
    strat: &S,
    test: F,
) -> Result<(), Failure<S::Value>> {
    let seed = std::env::var("SERVAL_CHECK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(cfg.seed);
    let cases = std::env::var("SERVAL_CHECK_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(cfg.cases);
    let mut case_seeds = SplitMix64::new(seed ^ hash_name(name));
    with_quiet_panics(|| {
        for case in 0..cases {
            let mut src = DataSource::random(Rng::from_seed(case_seeds.next_u64()));
            let value = strat.generate(&mut src);
            if let Err(e) = catch_unwind(AssertUnwindSafe(|| test(value))) {
                let choices = src.into_record();
                let msg = panic_message(e);
                let (min_choices, final_msg, shrink_iters) =
                    shrink(cfg, strat, &test, choices, msg);
                let minimal = strat.generate(&mut DataSource::replay(min_choices));
                return Err(Failure { minimal, message: final_msg, seed, case, shrink_iters });
            }
        }
        Ok(())
    })
}

/// The entry point generated by the `proptest!` macro: runs the property
/// and panics with a reproduction report on failure.
pub fn run_property<S: Strategy, F: Fn(S::Value)>(
    cfg: &ProptestConfig,
    name: &str,
    strat: &S,
    test: F,
) {
    if let Err(f) = run_property_result(cfg, name, strat, test) {
        panic!(
            "[serval-check] property '{}' failed (case {} of this run, \
             {} shrink iterations)\n  minimal input: {:?}\n  failure: {}\n  \
             reproduce with SERVAL_CHECK_SEED={}",
            name, f.case, f.shrink_iters, f.minimal, f.message, f.seed
        );
    }
}
