//! Strategies: composable random-value generators.
//!
//! A [`Strategy`] turns draws from a [`DataSource`] into a value. The
//! surface mirrors the subset of `proptest` the workspace test suites
//! use — integer ranges, `any::<T>()`, [`Just`], `prop::sample::select`,
//! `prop::collection::vec`, tuples, `prop_map`/`prop_flat_map`, and
//! `prop_oneof!` (via [`Union`]) — so migrating a suite is a one-line
//! import change.
//!
//! Every strategy is written so that an all-zero choice stream produces
//! its simplest value (range start, empty-ish collection, first
//! `prop_oneof!` arm), which is what makes choice-list shrinking drive
//! generated values toward minimal counterexamples.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::data::DataSource;

pub trait Strategy {
    type Value: Debug;

    /// Generates one value, drawing all randomness from `d`.
    fn generate(&self, d: &mut DataSource) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!` to mix arms of
    /// different concrete types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, d: &mut DataSource) -> S::Value {
        (**self).generate(d)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, d: &mut DataSource) -> S::Value {
        (**self).generate(d)
    }
}

// ---------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, d: &mut DataSource) -> T {
        (self.f)(self.inner.generate(d))
    }
}

#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, d: &mut DataSource) -> S2::Value {
        (self.f)(self.inner.generate(d)).generate(d)
    }
}

/// Always generates a clone of the given value (`proptest`'s `Just`).
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _d: &mut DataSource) -> T {
        self.0.clone()
    }
}

/// A uniform choice among boxed arms; the backing of `prop_oneof!`.
/// Shrinks toward the first arm.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, d: &mut DataSource) -> T {
        let i = d.draw(self.arms.len() as u64) as usize;
        self.arms[i].generate(d)
    }
}

// ---------------------------------------------------------------------
// Integer ranges
// ---------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, d: &mut DataSource) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                let span = (hi - lo) as u128;
                let off = if span > u64::MAX as u128 {
                    d.draw_full() as u128
                } else {
                    d.draw(span as u64) as u128
                };
                (lo + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, d: &mut DataSource) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                let off = if span > u64::MAX as u128 {
                    d.draw_full() as u128
                } else {
                    d.draw(span as u64) as u128
                };
                (lo + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------

/// Types with a canonical whole-domain generator.
pub trait Arbitrary: Debug {
    fn arbitrary(d: &mut DataSource) -> Self;
}

pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}
impl<T> Copy for Any<T> {}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, d: &mut DataSource) -> T {
        T::arbitrary(d)
    }
}

/// Uniform generator over all of `T` (`proptest`'s `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(d: &mut DataSource) -> bool {
        d.draw(2) == 1
    }
}

macro_rules! arbitrary_small_int {
    ($($t:ty => $u:ty, $bound:expr);*;) => {$(
        impl Arbitrary for $t {
            fn arbitrary(d: &mut DataSource) -> $t {
                (d.draw($bound) as $u) as $t
            }
        }
    )*};
}

arbitrary_small_int! {
    u8 => u8, 1 << 8;
    i8 => u8, 1 << 8;
    u16 => u16, 1 << 16;
    i16 => u16, 1 << 16;
    u32 => u32, 1 << 32;
    i32 => u32, 1 << 32;
}

macro_rules! arbitrary_full_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(d: &mut DataSource) -> $t {
                d.draw_full() as $t
            }
        }
    )*};
}

arbitrary_full_int!(u64, i64, usize, isize);

impl Arbitrary for u128 {
    fn arbitrary(d: &mut DataSource) -> u128 {
        ((d.draw_full() as u128) << 64) | d.draw_full() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(d: &mut DataSource) -> i128 {
        u128::arbitrary(d) as i128
    }
}

// ---------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, d: &mut DataSource) -> Self::Value {
                ($(self.$idx.generate(d),)+)
            }
        }
    };
}

tuple_strategy!(S0.0);
tuple_strategy!(S0.0, S1.1);
tuple_strategy!(S0.0, S1.1, S2.2);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);

// ---------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------

/// An inclusive length range for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    pub lo: usize,
    pub hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

#[derive(Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, d: &mut DataSource) -> Vec<S::Value> {
        let len = if self.size.hi > self.size.lo {
            self.size.lo + d.draw((self.size.hi - self.size.lo + 1) as u64) as usize
        } else {
            self.size.lo
        };
        (0..len).map(|_| self.elem.generate(d)).collect()
    }
}

pub mod collection {
    use super::*;

    /// `prop::collection::vec`: a vector of `size` elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

pub mod sample {
    use super::*;

    #[derive(Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, d: &mut DataSource) -> T {
            let i = d.draw(self.items.len() as u64) as usize;
            self.items[i].clone()
        }
    }

    /// `prop::sample::select`: uniform choice from a fixed list.
    /// Shrinks toward the first element.
    pub fn select<T: Clone + Debug>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select needs at least one item");
        Select { items }
    }
}

pub mod bits {
    use super::*;

    #[derive(Clone, Copy)]
    pub struct BitVector {
        width: u32,
    }

    impl Strategy for BitVector {
        type Value = u128;
        fn generate(&self, d: &mut DataSource) -> u128 {
            let raw = if self.width > 64 {
                ((d.draw_full() as u128) << 64) | d.draw_full() as u128
            } else {
                d.draw_full() as u128
            };
            if self.width >= 128 {
                raw
            } else {
                raw & ((1u128 << self.width) - 1)
            }
        }
    }

    /// A `width`-bit value as a `u128` (masked), for driving the SMT
    /// layer's bitvector terms at arbitrary widths. Shrinks toward 0.
    pub fn bv(width: u32) -> BitVector {
        assert!((1..=128).contains(&width), "bitvector width must be 1..=128");
        BitVector { width }
    }
}
