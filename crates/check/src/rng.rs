//! Deterministic, splittable pseudo-random number generation.
//!
//! Two classic generators, implemented from scratch so the workspace has
//! zero external dependencies:
//!
//! - [`SplitMix64`]: a tiny 64-bit mixer, used for seeding and for
//!   deriving decorrelated per-case streams from a root seed.
//! - [`Xoshiro256`] (xoshiro256**): the workhorse stream generator.
//!
//! Both are fully deterministic functions of their seed, which is what
//! gives the property-test runner seed-reproducible case sequences.

/// SplitMix64 (Steele, Lea, Flood 2014). Every call advances the state by
/// a fixed odd constant and mixes it; any 64-bit seed is acceptable,
/// including zero.
#[derive(Clone, Debug)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256** (Blackman, Vigna 2018): 256 bits of state, period
/// 2^256 − 1, passes BigCrush. Seeded through SplitMix64 so that any
/// 64-bit seed (even 0) yields a well-mixed non-zero state.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Derives an independent generator. The child is seeded from the
    /// parent's output stream, so parent and child sequences are
    /// decorrelated (the splittable-PRNG pattern).
    pub fn split(&mut self) -> Self {
        Xoshiro256::from_seed(self.next_u64())
    }
}

/// The default generator used throughout the crate.
pub type Rng = Xoshiro256;

/// FNV-1a over a string: used to decorrelate per-property streams so two
/// properties with the same seed do not see the same cases.
pub fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 0 (published reference sequence).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(sm.next_u64(), 0x6e789e6aa1b965f4);
        assert_eq!(sm.next_u64(), 0x06c45d188009454f);
    }

    #[test]
    fn xoshiro_streams_are_deterministic_and_split_decorrelated() {
        let mut a = Xoshiro256::from_seed(7);
        let mut b = Xoshiro256::from_seed(7);
        let seq_a: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let seq_b: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(seq_a, seq_b);
        let mut parent = Xoshiro256::from_seed(7);
        let mut child = parent.split();
        let pa: Vec<u64> = (0..16).map(|_| parent.next_u64()).collect();
        let ch: Vec<u64> = (0..16).map(|_| child.next_u64()).collect();
        assert_ne!(pa, ch);
    }
}
