//! Deterministic simulation context: the substrate under `serval-sim`.
//!
//! FoundationDB-style testing needs three things the OS refuses to give
//! deterministically: time, scheduling, and IO failure. This module owns
//! all three as a process-global, *seeded* context:
//!
//! - a **virtual clock** ([`now`]/[`advance`]) that only moves when the
//!   simulation moves it;
//! - a **seeded decision stream** ([`choose`]/[`next_u64`]) that
//!   schedulers draw from instead of racing real threads;
//! - **buggify points** ([`buggify`]): named hooks in the production
//!   code's rare branches (lock-order edges, fallback paths, purge
//!   skips) that fire with seed-determined probability *only under
//!   simulation* — in a normal process every hook is a branch-not-taken
//!   on a `bool` load;
//! - **IO fault injection** ([`io`]): the disk verdict-cache writes
//!   route through wrappers that can tear an append short, flip a bit,
//!   or kill the "process"'s IO mid-schedule (crash-before-rename).
//!
//! Everything that happens under a sim context is appended to a
//! **schedule trace** ([`TraceEvent`]); the trace plus the scenario's
//! verdicts are the simulation's observable behavior, and the contract
//! is: same seed ⇒ bit-identical trace and verdicts. A failing schedule
//! is therefore a *replayable seed*, not a heisenbug.
//!
//! Concurrency model: the context is a global `Mutex`. Determinism does
//! not come from the mutex — it comes from the simulated executor
//! serializing all work (one scheduler thread choosing steps, one
//! runner thread executing the chosen job to completion), so the order
//! of draws from the decision stream is a pure function of the seed.

use crate::rng::{hash_name, Xoshiro256};
use std::sync::{Mutex, MutexGuard};

/// Configuration for one simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Root seed: every scheduling choice, buggify draw, and IO fault
    /// derives from it.
    pub seed: u64,
    /// Arm the buggify points (off: the sim still owns scheduling and
    /// the clock, but production code takes only its normal branches).
    pub buggify: bool,
    /// Arm disk IO fault injection (torn writes, bit flips, lost
    /// renames) in the wrappers under [`io`].
    pub io_faults: bool,
}

impl SimConfig {
    /// A plain deterministic run: scheduling owned by the seed, no
    /// fault injection.
    pub fn plain(seed: u64) -> SimConfig {
        SimConfig { seed, buggify: false, io_faults: false }
    }

    /// The hostile run: buggify and IO faults armed.
    pub fn hostile(seed: u64) -> SimConfig {
        SimConfig { seed, buggify: true, io_faults: true }
    }
}

/// One observable step of a simulated schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// The scheduler stepped virtual worker `worker`, which claimed a
    /// job from `source` (`"own"`, `"injector"`, or `"steal"`).
    Step { worker: usize, source: &'static str, vtime: u64 },
    /// A buggify point was consulted and fired.
    Buggify { point: &'static str, vtime: u64 },
    /// An IO fault was injected (`kind` ∈ torn/flip/crash/lost-rename).
    IoFault { kind: &'static str, vtime: u64 },
    /// A scenario-level marker (scenarios label phases with these so
    /// two runs' traces align even when they log nothing else).
    Mark { label: String, vtime: u64 },
}

struct SimState {
    cfg: SimConfig,
    rng: Xoshiro256,
    /// Virtual nanoseconds since the context began.
    vclock: u64,
    trace: Vec<TraceEvent>,
    /// Once a simulated crash kills IO, every later write is a no-op.
    io_dead: bool,
}

/// What a finished simulation observed.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// The full schedule trace, in order.
    pub trace: Vec<TraceEvent>,
    /// Final virtual time.
    pub vtime: u64,
}

impl SimReport {
    /// FNV-1a fingerprint of the trace — the cheap thing regression
    /// tests compare across two same-seed runs.
    pub fn trace_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for ev in &self.trace {
            eat(format!("{ev:?}").as_bytes());
        }
        h
    }
}

static SIM: Mutex<Option<SimState>> = Mutex::new(None);

fn slot() -> MutexGuard<'static, Option<SimState>> {
    // The sim context must survive a panicking scenario (the sweep
    // catches the panic, reports the seed, and ends the context), so a
    // poisoned mutex is recovered, never propagated.
    SIM.lock().unwrap_or_else(|e| e.into_inner())
}

/// Installs a fresh simulation context. Panics if one is already
/// active: sims do not nest.
pub fn begin(cfg: SimConfig) {
    let mut s = slot();
    assert!(s.is_none(), "a simulation context is already active");
    *s = Some(SimState {
        rng: Xoshiro256::from_seed(cfg.seed),
        cfg,
        vclock: 0,
        trace: Vec::new(),
        io_dead: false,
    });
}

/// Tears the context down, returning everything it observed.
pub fn end() -> SimReport {
    let st = slot().take().expect("no simulation context to end");
    SimReport { trace: st.trace, vtime: st.vclock }
}

/// Whether a simulation context is active on this process.
pub fn active() -> bool {
    slot().is_some()
}

/// Draws the next 64 bits of the decision stream. Panics outside a sim.
pub fn next_u64() -> u64 {
    slot().as_mut().expect("sim::next_u64 outside a simulation").rng.next_u64()
}

/// Draws a choice in `0..n` (n ≥ 1) from the decision stream.
pub fn choose(n: usize) -> usize {
    assert!(n >= 1);
    (next_u64() % n as u64) as usize
}

/// Current virtual time in nanoseconds (0 outside a sim).
pub fn now() -> u64 {
    slot().as_ref().map(|s| s.vclock).unwrap_or(0)
}

/// Advances the virtual clock.
pub fn advance(nanos: u64) {
    if let Some(s) = slot().as_mut() {
        s.vclock += nanos;
    }
}

/// Appends a raw event to the schedule trace (no-op outside a sim).
pub fn trace(ev: TraceEvent) {
    if let Some(s) = slot().as_mut() {
        s.trace.push(ev);
    }
}

/// Marks a scenario phase in the trace.
pub fn mark(label: impl Into<String>) {
    let mut guard = slot();
    if let Some(s) = guard.as_mut() {
        let vtime = s.vclock;
        s.trace.push(TraceEvent::Mark { label: label.into(), vtime });
    }
}

/// Records that the simulated scheduler stepped `worker`, claiming from
/// `source`, and advances the clock one scheduling quantum.
pub fn trace_step(worker: usize, source: &'static str) {
    let mut guard = slot();
    if let Some(s) = guard.as_mut() {
        s.vclock += 1_000;
        let vtime = s.vclock;
        s.trace.push(TraceEvent::Step { worker, source, vtime });
    }
}

/// A buggify point: returns `true` (and logs it) with seed-determined
/// probability when a sim context with `buggify` armed is active, and
/// `false` always otherwise — production builds pay one mutex-guarded
/// `Option` check, sims get FoundationDB-style rare-branch injection.
///
/// FDB convention: a point is *enabled* per run (the seed and the point
/// name decide, ~50%), and an enabled point *fires* per visit (~25%),
/// so most runs exercise a different sparse subset of the hooks.
pub fn buggify(point: &'static str) -> bool {
    let mut guard = slot();
    let Some(s) = guard.as_mut() else { return false };
    if !s.cfg.buggify {
        return false;
    }
    // Per-run enablement: pure function of (seed, point), drawn outside
    // the decision stream so consulting a point never perturbs the
    // schedule of a run that has it disabled.
    let gate = hash_name(point) ^ s.cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    if gate & 1 == 0 {
        return false;
    }
    let fired = s.rng.next_u64() % 4 == 0;
    if fired {
        s.vclock += 500;
        let vtime = s.vclock;
        s.trace.push(TraceEvent::Buggify { point, vtime });
    }
    fired
}

/// Fault-injectable IO wrappers. Production code calls these instead of
/// the raw `std::fs`/`Write` operations on the paths a crash or a torn
/// write would corrupt; outside a sim (or with `io_faults` off) they are
/// transparent passthroughs.
pub mod io {
    use super::{slot, TraceEvent};
    use std::io::Write;
    use std::path::Path;

    enum Fault {
        None,
        /// Write only a prefix, then report success (torn append).
        Torn(usize),
        /// Flip one bit of one byte, then write everything.
        Flip(usize),
        /// Write a prefix, then kill this process's IO for good.
        Crash(usize),
    }

    /// Draws the fault plan for one write of `len` bytes. Faults are
    /// deliberately common (~1 in 6 writes) — a sim sweep's job is to
    /// hit the corruption paths, not to model a healthy disk.
    fn plan(len: usize) -> (Fault, bool) {
        let mut guard = slot();
        let Some(s) = guard.as_mut() else { return (Fault::None, false) };
        if !s.cfg.io_faults {
            return (Fault::None, false);
        }
        if s.io_dead {
            return (Fault::Crash(0), false);
        }
        let f = match s.rng.next_u64() % 18 {
            0 => Fault::Torn((s.rng.next_u64() as usize) % len.max(1)),
            1 => Fault::Flip((s.rng.next_u64() as usize) % len.max(1)),
            2 => {
                s.io_dead = true;
                Fault::Crash((s.rng.next_u64() as usize) % len.max(1))
            }
            _ => Fault::None,
        };
        let kind = match &f {
            Fault::None => None,
            Fault::Torn(_) => Some("torn"),
            Fault::Flip(_) => Some("flip"),
            Fault::Crash(_) => Some("crash"),
        };
        if let Some(kind) = kind {
            s.vclock += 250;
            let vtime = s.vclock;
            s.trace.push(TraceEvent::IoFault { kind, vtime });
        }
        (f, true)
    }

    /// `write_all` with fault injection: the return value still reports
    /// success on a torn or crashed write, exactly like a real short
    /// write the process never got to observe.
    pub fn write_all(f: &mut std::fs::File, bytes: &[u8]) -> std::io::Result<()> {
        match plan(bytes.len()) {
            (Fault::None, _) => f.write_all(bytes),
            (Fault::Torn(k), _) => {
                let _ = f.write_all(&bytes[..k]);
                Ok(())
            }
            (Fault::Flip(k), _) => {
                let mut copy = bytes.to_vec();
                if !copy.is_empty() {
                    copy[k] ^= 1;
                }
                f.write_all(&copy)
            }
            (Fault::Crash(k), _) => {
                let _ = f.write_all(&bytes[..k]);
                Ok(())
            }
        }
    }

    /// `fs::rename` with crash-before-rename injection: the temp file
    /// stays on disk, the destination never appears, success is
    /// reported (the "process" died believing it renamed).
    pub fn rename(from: &Path, to: &Path) -> std::io::Result<()> {
        let lost = {
            let mut guard = slot();
            match guard.as_mut() {
                Some(s) if s.io_dead => true,
                Some(s) if s.cfg.io_faults => {
                    if s.rng.next_u64() % 12 == 0 {
                        s.vclock += 250;
                        let vtime = s.vclock;
                        s.trace.push(TraceEvent::IoFault { kind: "lost-rename", vtime });
                        true
                    } else {
                        false
                    }
                }
                _ => false,
            }
        };
        if lost {
            return Ok(());
        }
        std::fs::rename(from, to)
    }

    /// Whether the simulated process's IO has crashed (writes no-op).
    pub fn crashed() -> bool {
        slot().as_ref().map(|s| s.io_dead).unwrap_or(false)
    }

    /// Revives IO after a simulated crash (scenarios use this to model
    /// the next process generation on the same disk).
    pub fn revive() {
        if let Some(s) = slot().as_mut() {
            s.io_dead = false;
        }
    }
}
