//! serval-check: a self-contained, deterministic property-based testing
//! and micro-benchmarking substrate.
//!
//! The workspace's charter is to build every substrate from scratch — the
//! SAT solver stands in for Z3, the SMT layer for Rosette, and this crate
//! for `proptest` + `rand` + `criterion`, which are unreachable in an
//! offline build and, unlike this crate, not seed-deterministic by
//! default.
//!
//! Architecture (Hypothesis-style integrated shrinking):
//!
//! ```text
//!   proptest! macro ─▶ runner (cases, catch, shrink)     runner.rs
//!        │                      │
//!   Strategy combinators ─▶ DataSource (choice stream)   strategy.rs / data.rs
//!                               │
//!                     Xoshiro256** / SplitMix64          rng.rs
//! ```
//!
//! Strategies draw from a recorded choice stream; a failing case is its
//! choice list, and shrinking mutates that list (delete blocks, minimize
//! choices) and replays generation, so shrinking composes automatically
//! through every combinator. All-zero choices yield each strategy's
//! simplest value, so shrinking converges toward minimal inputs.
//!
//! The macro surface is `proptest`-compatible for the subset the
//! workspace uses: migrating a suite is normally just
//! `use proptest::prelude::*;` → `use serval_check::prelude::*;`.
//!
//! ```
//! use serval_check::prelude::*;
//!
//! // In a test module, put `#[test]` above the fn as with proptest.
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(64))]
//!     fn addition_commutes(a in any::<u32>(), b in any::<u32>()) {
//!         prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
//!     }
//! }
//! # addition_commutes();
//! ```
//!
//! The [`bench`] module is the criterion replacement: warmup + N timed
//! samples, min/median/p95/mean, JSON emission for trajectory files.

pub mod bench;
pub mod data;
pub mod rng;
pub mod runner;
pub mod sim;
pub mod strategy;

#[cfg(test)]
mod tests;

pub use runner::{Failure, ProptestConfig};
pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};

/// `proptest`-style namespace: `prop::collection::vec`,
/// `prop::sample::select`, `prop::bits::bv`.
pub mod prop {
    pub use crate::strategy::bits;
    pub use crate::strategy::collection;
    pub use crate::strategy::sample;
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::runner::ProptestConfig;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Accepts an optional leading
/// `#![proptest_config(expr)]` followed by any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let __strategy = ($($strat,)+);
            $crate::runner::run_property(
                &__cfg,
                stringify!($name),
                &__strategy,
                |($($arg,)+)| $body,
            );
        }
    )*};
}

/// Uniform choice among strategies of a common value type; each arm is
/// boxed, so arms may have different concrete strategy types. Shrinks
/// toward the first arm.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// `assert!` for property bodies (panics; the runner catches and
/// shrinks).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            panic!("prop_assert_eq failed: {:?} != {:?}", a, b);
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            panic!($($fmt)+);
        }
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            panic!("prop_assert_ne failed: both sides are {:?}", a);
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            panic!($($fmt)+);
        }
    }};
}
