//! The choice stream underlying generation and shrinking.
//!
//! Every strategy draws its randomness through a [`DataSource`], which
//! records the sequence of (already range-reduced) choices it hands out.
//! A failing test case is therefore fully described by its choice list,
//! and shrinking operates on that list alone: delete choices, replace
//! them with smaller ones, and replay generation. Because replaying a
//! mutated list re-runs the *same* generation code, shrinking composes
//! automatically through `prop_map`, `prop_flat_map`, `prop_oneof!`, and
//! collections — the Hypothesis-style "integrated shrinking" design.
//!
//! Replay is total: when a (shortened) choice list runs out, further
//! draws return 0, which by construction maps every strategy to its
//! simplest value.

use crate::rng::Rng;

enum Mode {
    /// Fresh generation: choices come from the PRNG.
    Random(Rng),
    /// Replay of a (possibly mutated) recorded choice list.
    Replay { choices: Vec<u64>, pos: usize },
}

pub struct DataSource {
    mode: Mode,
    record: Vec<u64>,
}

impl DataSource {
    pub fn random(rng: Rng) -> Self {
        DataSource { mode: Mode::Random(rng), record: Vec::new() }
    }

    pub fn replay(choices: Vec<u64>) -> Self {
        DataSource { mode: Mode::Replay { choices, pos: 0 }, record: Vec::new() }
    }

    fn next_raw(&mut self) -> u64 {
        match &mut self.mode {
            Mode::Random(rng) => rng.next_u64(),
            Mode::Replay { choices, pos } => {
                let v = choices.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                v
            }
        }
    }

    /// Draws a value in `[0, bound)`. The *reduced* value is recorded, so
    /// a recorded choice list replays exactly, and shrinking a choice
    /// monotonically shrinks the generated value (0 is always the
    /// simplest draw).
    pub fn draw(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "draw bound must be positive");
        let v = self.next_raw() % bound;
        self.record.push(v);
        v
    }

    /// Draws a full 64-bit value (for `any::<u64>()`-style generators
    /// where the whole domain is wanted). Shrinks toward 0.
    pub fn draw_full(&mut self) -> u64 {
        let v = self.next_raw();
        self.record.push(v);
        v
    }

    /// The choices handed out so far, in order.
    pub fn into_record(self) -> Vec<u64> {
        self.record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_reproduces_and_pads_with_zero() {
        let mut rng = Rng::from_seed(11);
        let mut src = DataSource::random(rng.split());
        let a = (src.draw(100), src.draw_full(), src.draw(7));
        let rec = src.into_record();
        let mut re = DataSource::replay(rec.clone());
        let b = (re.draw(100), re.draw_full(), re.draw(7));
        assert_eq!(a, b);
        // Exhausted replay yields zeros.
        assert_eq!(re.draw(42), 0);
        assert_eq!(re.draw_full(), 0);
    }
}
