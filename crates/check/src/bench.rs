//! A hand-rolled micro-benchmark harness (criterion's replacement).
//!
//! Each benchmark runs a warmup, then `samples` timed iterations, and
//! reports min / median / p95 / mean wall-clock time. A [`Harness`]
//! collects results for a suite and can emit them as JSON (hand-rolled —
//! no serde) so trajectory files like `BENCH_*.json` can be generated
//! and diffed across commits.
//!
//! Environment knobs: `SERVAL_BENCH_SAMPLES` and `SERVAL_BENCH_WARMUP`
//! override the per-bench iteration counts (e.g. `SERVAL_BENCH_SAMPLES=3`
//! for a quick CI pass).

use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Untimed warmup iterations before sampling.
    pub warmup: u32,
    /// Timed iterations; each one is a sample.
    pub samples: u32,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig { warmup: 1, samples: 10 }
    }
}

impl BenchConfig {
    pub fn from_env() -> Self {
        let d = BenchConfig::default();
        let get = |k: &str, d: u32| {
            std::env::var(k).ok().and_then(|s| s.parse().ok()).unwrap_or(d)
        };
        BenchConfig {
            warmup: get("SERVAL_BENCH_WARMUP", d.warmup),
            samples: get("SERVAL_BENCH_SAMPLES", d.samples).max(1),
        }
    }
}

#[derive(Clone, Debug)]
pub struct BenchResult {
    pub name: String,
    pub samples_ns: Vec<u128>,
    pub min_ns: u128,
    pub median_ns: u128,
    pub p95_ns: u128,
    pub mean_ns: u128,
}

impl BenchResult {
    fn from_samples(name: &str, samples_ns: Vec<u128>) -> Self {
        let mut sorted = samples_ns.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let pct = |p: f64| {
            let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
            sorted[idx]
        };
        BenchResult {
            name: name.to_string(),
            min_ns: sorted[0],
            median_ns: pct(0.50),
            p95_ns: pct(0.95),
            mean_ns: samples_ns.iter().sum::<u128>() / n as u128,
            samples_ns,
        }
    }
}

/// Renders nanoseconds human-readably (ns/µs/ms/s).
pub fn fmt_ns(ns: u128) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

pub struct Harness {
    pub suite: String,
    pub cfg: BenchConfig,
    pub results: Vec<BenchResult>,
}

impl Harness {
    pub fn new(suite: &str) -> Self {
        Harness { suite: suite.to_string(), cfg: BenchConfig::from_env(), results: Vec::new() }
    }

    pub fn with_config(suite: &str, cfg: BenchConfig) -> Self {
        Harness { suite: suite.to_string(), cfg, results: Vec::new() }
    }

    /// Runs one benchmark: warmup, then timed samples. Prints a one-line
    /// summary immediately and records the result.
    pub fn bench(&mut self, name: &str, mut f: impl FnMut()) -> &BenchResult {
        for _ in 0..self.cfg.warmup {
            f();
        }
        let mut samples = Vec::with_capacity(self.cfg.samples as usize);
        for _ in 0..self.cfg.samples {
            let t = Instant::now();
            f();
            samples.push(t.elapsed().as_nanos());
        }
        let r = BenchResult::from_samples(name, samples);
        println!(
            "{}/{}: min {}  median {}  p95 {}  ({} samples)",
            self.suite,
            r.name,
            fmt_ns(r.min_ns),
            fmt_ns(r.median_ns),
            fmt_ns(r.p95_ns),
            r.samples_ns.len()
        );
        self.results.push(r);
        self.results.last().unwrap()
    }

    pub fn print_summary(&self) {
        println!("\n== {} ({} benchmarks) ==", self.suite, self.results.len());
        let w = self.results.iter().map(|r| r.name.len()).max().unwrap_or(0);
        for r in &self.results {
            println!(
                "  {:<w$}  min {:>12}  median {:>12}  p95 {:>12}  mean {:>12}",
                r.name,
                fmt_ns(r.min_ns),
                fmt_ns(r.median_ns),
                fmt_ns(r.p95_ns),
                fmt_ns(r.mean_ns),
            );
        }
    }

    /// The whole suite as a JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"suite\": \"{}\",\n", json_escape(&self.suite)));
        s.push_str(&format!(
            "  \"config\": {{\"warmup\": {}, \"samples\": {}}},\n",
            self.cfg.warmup, self.cfg.samples
        ));
        s.push_str("  \"benches\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let samples: Vec<String> = r.samples_ns.iter().map(|x| x.to_string()).collect();
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"min_ns\": {}, \"median_ns\": {}, \
                 \"p95_ns\": {}, \"mean_ns\": {}, \"samples_ns\": [{}]}}{}\n",
                json_escape(&r.name),
                r.min_ns,
                r.median_ns,
                r.p95_ns,
                r.mean_ns,
                samples.join(", "),
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_and_json_shape() {
        let mut h = Harness::with_config("t", BenchConfig { warmup: 0, samples: 5 });
        let mut x = 0u64;
        h.bench("spin", || {
            for i in 0..1000 {
                x = x.wrapping_add(i);
            }
        });
        let r = &h.results[0];
        assert_eq!(r.samples_ns.len(), 5);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.p95_ns);
        let j = h.to_json();
        assert!(j.contains("\"suite\": \"t\""));
        assert!(j.contains("\"name\": \"spin\""));
        assert!(j.contains("\"samples_ns\": ["));
    }

    #[test]
    fn percentiles_of_known_samples() {
        let r = BenchResult::from_samples(
            "k",
            vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100],
        );
        assert_eq!(r.min_ns, 10);
        assert_eq!(r.median_ns, 50);
        assert_eq!(r.p95_ns, 100);
        assert_eq!(r.mean_ns, 55);
    }
}
