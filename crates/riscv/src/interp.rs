//! The RV64 fetch-decode-execute loop under symbolic evaluation.
//!
//! A run starts from a trap-entry or reset state and evaluates until the
//! handler executes `mret` (paper §3.4, Fig. 6: each trap handler runs in
//! its entirety with interrupts disabled). `split-pc` is applied before
//! every fetch (paper §4); the merged-pc fallback exists only for the §6.4
//! ablation.

use crate::insn::{BrOp, CsrSrc, IAluOp, IAluWOp, Insn, LdOp, RAluOp, RAluWOp, StOp};
use crate::machine::Machine;
use serval_core::{split_pc, BugOn, OptCfg};
use serval_smt::{SBool, BV};
use serval_sym::{Merge, SymCtx};
use std::collections::BTreeMap;

/// How a handler run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Some path executed `mret` (normal handler exit).
    pub returned: bool,
    /// Some path ran out of fuel (symbolic evaluation diverged).
    pub diverged: bool,
    /// Some path had an opaque (unconstrained) program counter — usually a
    /// security bug in the system (paper §4).
    pub opaque_pc: bool,
    /// Instructions executed on the longest path.
    pub steps: usize,
}

impl Merge for RunOutcome {
    fn merge(_c: SBool, t: &Self, e: &Self) -> Self {
        RunOutcome {
            returned: t.returned || e.returned,
            diverged: t.diverged || e.diverged,
            opaque_pc: t.opaque_pc || e.opaque_pc,
            steps: t.steps.max(e.steps),
        }
    }
}

impl RunOutcome {
    /// A run that ended cleanly on every path.
    pub fn ok(&self) -> bool {
        self.returned && !self.diverged && !self.opaque_pc
    }
}

/// The lifted interpreter: validated code plus evaluation knobs.
pub struct Interp {
    /// Decoded (and encoder-validated) instructions by address.
    pub code: BTreeMap<u64, Insn>,
    /// Symbolic-optimization configuration.
    pub opt: OptCfg,
    /// Maximum instructions per path.
    pub fuel: usize,
}

impl Interp {
    /// Builds an interpreter from machine-code words laid out at `base`,
    /// decoding each word and validating it against the encoder
    /// (paper §3.4).
    pub fn from_words(base: u64, words: &[u32], fuel: usize) -> Result<Interp, String> {
        let mut code = BTreeMap::new();
        for (i, &w) in words.iter().enumerate() {
            let insn = crate::insn::decode_validated(w)
                .map_err(|e| format!("at {:#x}: {e}", base + 4 * i as u64))?;
            code.insert(base + 4 * i as u64, insn);
        }
        Ok(Interp {
            code,
            opt: OptCfg::default(),
            fuel,
        })
    }

    /// Runs from `m` until every path executes `mret` (or exhausts fuel).
    pub fn run(&self, ctx: &mut SymCtx, m: &mut Machine) -> RunOutcome {
        self.step(ctx, m, self.fuel)
    }

    fn step(&self, ctx: &mut SymCtx, m: &mut Machine, mut fuel: usize) -> RunOutcome {
        // Straight-line fast path: while the pc has exactly one feasible
        // concrete value, execute iteratively (no Rust recursion). This
        // keeps long handler runs within stack limits; genuine path splits
        // fall through to the recursive `split_pc` below.
        let mut steps = 0usize;
        if self.opt.split_pc {
            loop {
                if fuel == 0 {
                    return RunOutcome {
                        returned: false,
                        diverged: true,
                        opaque_pc: false,
                        steps,
                    };
                }
                let single = match serval_core::enumerate_pc(m.pc) {
                    serval_core::PcCases::Concrete(vs) => {
                        let mut feasible = vs.into_iter().filter(|&v| {
                            !ctx.infeasible(m.pc.eq_(serval_smt::BV::lit(64, v)))
                        });
                        match (feasible.next(), feasible.next()) {
                            (Some(v), None) => Some(v),
                            _ => None,
                        }
                    }
                    serval_core::PcCases::Opaque => {
                        if std::env::var("SERVAL_DEBUG_PC").is_ok() {
                            eprintln!("opaque pc after {steps} steps: {:?}", m.pc);
                        }
                        return RunOutcome {
                            returned: false,
                            diverged: false,
                            opaque_pc: true,
                            steps,
                        }
                    }
                };
                match single {
                    Some(v) => {
                        if let Some(mut o) = self.exec_one(ctx, m, v as u64) {
                            o.steps += steps;
                            return o;
                        }
                        steps += 1;
                        fuel -= 1;
                    }
                    None => break,
                }
            }
        }
        if fuel == 0 {
            return RunOutcome {
                returned: false,
                diverged: true,
                opaque_pc: false,
                steps,
            };
        }
        let pc = m.pc;
        if self.opt.split_pc {
            let r = split_pc(ctx, m, pc, |ctx, m, v| self.exec_at(ctx, m, v as u64, fuel));
            match r {
                Ok(mut o) => {
                    o.steps += steps;
                    o
                }
                Err(()) => RunOutcome {
                    returned: false,
                    diverged: false,
                    opaque_pc: true,
                    steps,
                },
            }
        } else {
            // Merged-pc ablation baseline: every code address is a case and
            // the guards are opaque to the term layer (paper §3.2).
            let cases: Vec<(SBool, u128)> = self
                .code
                .keys()
                .map(|&a| {
                    let av = BV::lit(64, a as u128);
                    (pc.uge(av) & pc.ule(av), a as u128)
                })
                .collect();
            ctx.split(m, &cases, |ctx, m, a| self.exec_at(ctx, m, a as u64, fuel))
        }
    }

    /// Executes one instruction at a concrete address. Returns `Some` when
    /// the path stops here (mret, or a dead path flagged by `bug_on`).
    fn exec_one(&self, ctx: &mut SymCtx, m: &mut Machine, addr: u64) -> Option<RunOutcome> {
        let insn = match self.code.get(&addr) {
            Some(&i) => i,
            None => {
                // Jumping outside the monitor's text section is UB.
                ctx.bug_on(SBool::lit(true), &format!("pc {addr:#x} outside code"));
                return Some(RunOutcome {
                    returned: false,
                    diverged: false,
                    opaque_pc: false,
                    steps: 0,
                });
            }
        };
        m.pc = BV::lit(64, addr as u128);
        if self.execute(ctx, m, insn) {
            Some(RunOutcome {
                returned: true,
                diverged: false,
                opaque_pc: false,
                steps: 1,
            })
        } else {
            None
        }
    }

    fn exec_at(&self, ctx: &mut SymCtx, m: &mut Machine, addr: u64, fuel: usize) -> RunOutcome {
        match self.exec_one(ctx, m, addr) {
            Some(o) => o,
            None => {
                let mut o = self.step(ctx, m, fuel - 1);
                o.steps += 1;
                o
            }
        }
    }

    /// Executes one instruction at a concrete pc; returns true on `mret`.
    fn execute(&self, ctx: &mut SymCtx, m: &mut Machine, insn: Insn) -> bool {
        let pc = m.pc;
        let next = pc + BV::lit(64, 4);
        match insn {
            Insn::Lui { rd, imm20 } => {
                m.set_reg(rd, BV::lit(64, ((imm20 as i64) << 12) as u64 as u128));
                m.pc = next;
            }
            Insn::Auipc { rd, imm20 } => {
                m.set_reg(rd, pc + BV::lit(64, ((imm20 as i64) << 12) as u64 as u128));
                m.pc = next;
            }
            Insn::Jal { rd, off } => {
                m.set_reg(rd, next);
                m.pc = pc + BV::lit(64, off as i64 as u64 as u128);
            }
            Insn::Jalr { rd, rs1, off } => {
                let target =
                    (m.reg(rs1) + BV::lit(64, off as i64 as u64 as u128)) & !BV::lit(64, 1);
                m.set_reg(rd, next);
                m.pc = target;
            }
            Insn::Branch { op, rs1, rs2, off } => {
                let a = m.reg(rs1);
                let b = m.reg(rs2);
                let taken = match op {
                    BrOp::Beq => a.eq_(b),
                    BrOp::Bne => a.ne_(b),
                    BrOp::Blt => a.slt(b),
                    BrOp::Bge => a.sge(b),
                    BrOp::Bltu => a.ult(b),
                    BrOp::Bgeu => a.uge(b),
                };
                let target = pc + BV::lit(64, off as i64 as u64 as u128);
                m.pc = taken.select(target, next);
            }
            Insn::Load { op, rd, rs1, off } => {
                let addr = m.reg(rs1) + BV::lit(64, off as i64 as u64 as u128);
                let raw = m.load(ctx, addr, op.bytes());
                let v = match op {
                    LdOp::Lb | LdOp::Lh | LdOp::Lw => raw.sext(64),
                    LdOp::Lbu | LdOp::Lhu | LdOp::Lwu => raw.zext(64),
                    LdOp::Ld => raw,
                };
                m.set_reg(rd, v);
                m.pc = next;
            }
            Insn::Store { op, rs1, rs2, off } => {
                let addr = m.reg(rs1) + BV::lit(64, off as i64 as u64 as u128);
                let v = m.reg(rs2).trunc(op.bytes() * 8);
                let v = if op == StOp::Sd { m.reg(rs2) } else { v };
                m.store(ctx, addr, v, op.bytes());
                m.pc = next;
            }
            Insn::OpImm { op, rd, rs1, imm } => {
                let a = m.reg(rs1);
                let i = BV::lit(64, imm as i64 as u64 as u128);
                let one = BV::lit(64, 1);
                let zero = BV::lit(64, 0);
                let v = match op {
                    IAluOp::Addi => a + i,
                    IAluOp::Slti => a.slt(i).select(one, zero),
                    IAluOp::Sltiu => a.ult(i).select(one, zero),
                    IAluOp::Xori => a ^ i,
                    IAluOp::Ori => a | i,
                    IAluOp::Andi => a & i,
                    IAluOp::Slli => a.shl(BV::lit(64, (imm & 0x3f) as u128)),
                    IAluOp::Srli => a.lshr(BV::lit(64, (imm & 0x3f) as u128)),
                    IAluOp::Srai => a.ashr(BV::lit(64, (imm & 0x3f) as u128)),
                };
                m.set_reg(rd, v);
                m.pc = next;
            }
            Insn::OpImmW { op, rd, rs1, imm } => {
                let a = m.reg(rs1).trunc(32);
                let v32 = match op {
                    IAluWOp::Addiw => a + BV::lit(32, imm as i64 as u64 as u128),
                    IAluWOp::Slliw => a.shl(BV::lit(32, (imm & 0x1f) as u128)),
                    IAluWOp::Srliw => a.lshr(BV::lit(32, (imm & 0x1f) as u128)),
                    IAluWOp::Sraiw => a.ashr(BV::lit(32, (imm & 0x1f) as u128)),
                };
                m.set_reg(rd, v32.sext(64));
                m.pc = next;
            }
            Insn::Op { op, rd, rs1, rs2 } => {
                let a = m.reg(rs1);
                let b = m.reg(rs2);
                m.set_reg(rd, alu64(op, a, b));
                m.pc = next;
            }
            Insn::OpW { op, rd, rs1, rs2 } => {
                let a = m.reg(rs1).trunc(32);
                let b = m.reg(rs2).trunc(32);
                m.set_reg(rd, alu32(op, a, b).sext(64));
                m.pc = next;
            }
            Insn::Csr { op, rd, src, csr } => {
                let old = match m.csrs.read(csr) {
                    Some(v) => v,
                    None => {
                        ctx.bug_on(
                            SBool::lit(true),
                            &format!("access to unmodelled CSR {csr:#x}"),
                        );
                        BV::lit(64, 0)
                    }
                };
                let (src_val, src_is_zero) = match src {
                    CsrSrc::Reg(rs1) => (m.reg(rs1), rs1 == 0),
                    CsrSrc::Imm(z) => (BV::lit(64, z as u128), z == 0),
                };
                let new = match op {
                    crate::insn::CsrOp::Rw => src_val,
                    crate::insn::CsrOp::Rs => old | src_val,
                    crate::insn::CsrOp::Rc => old & !src_val,
                };
                // CSRRS/CSRRC with a zero source do not write (WARL
                // side-effect suppression); CSRRW always writes.
                let skip_write = src_is_zero && op != crate::insn::CsrOp::Rw;
                if !skip_write {
                    m.csrs.write(csr, new);
                }
                m.set_reg(rd, old);
                m.pc = next;
            }
            Insn::Ecall | Insn::Ebreak => {
                // The monitor itself must never trap.
                ctx.bug_on(SBool::lit(true), "ecall/ebreak inside monitor code");
                m.pc = next;
            }
            Insn::Mret => {
                // Handler exit (paper §3.4): control returns to mepc in the
                // mode recorded in mstatus.MPP; evaluation stops here.
                m.pc = m.csrs.mepc;
                return true;
            }
            Insn::Wfi | Insn::Fence => {
                m.pc = next;
            }
        }
        false
    }
}

/// 64-bit register-register ALU semantics, including the M extension with
/// RISC-V's division-by-zero and overflow rules.
fn alu64(op: RAluOp, a: BV, b: BV) -> BV {
    let one = BV::lit(64, 1);
    let zero = BV::lit(64, 0);
    let shamt = b & BV::lit(64, 0x3f);
    match op {
        RAluOp::Add => a + b,
        RAluOp::Sub => a - b,
        RAluOp::Sll => a.shl(shamt),
        RAluOp::Slt => a.slt(b).select(one, zero),
        RAluOp::Sltu => a.ult(b).select(one, zero),
        RAluOp::Xor => a ^ b,
        RAluOp::Srl => a.lshr(shamt),
        RAluOp::Sra => a.ashr(shamt),
        RAluOp::Or => a | b,
        RAluOp::And => a & b,
        RAluOp::Mul => a * b,
        RAluOp::Mulh => (a.sext(128) * b.sext(128)).extract(127, 64),
        RAluOp::Mulhsu => (a.sext(128) * b.zext(128)).extract(127, 64),
        RAluOp::Mulhu => (a.zext(128) * b.zext(128)).extract(127, 64),
        RAluOp::Div => div_signed(a, b, 64),
        RAluOp::Divu => b.is_zero().select(!zero, a.udiv(b)),
        RAluOp::Rem => rem_signed(a, b, 64),
        RAluOp::Remu => b.is_zero().select(a, a.urem(b)),
    }
}

/// 32-bit ALU semantics (inputs and result are 32-bit).
fn alu32(op: RAluWOp, a: BV, b: BV) -> BV {
    let shamt = b & BV::lit(32, 0x1f);
    let zero = BV::lit(32, 0);
    match op {
        RAluWOp::Addw => a + b,
        RAluWOp::Subw => a - b,
        RAluWOp::Sllw => a.shl(shamt),
        RAluWOp::Srlw => a.lshr(shamt),
        RAluWOp::Sraw => a.ashr(shamt),
        RAluWOp::Mulw => a * b,
        RAluWOp::Divw => div_signed(a, b, 32),
        RAluWOp::Divuw => b.is_zero().select(!zero, a.udiv(b)),
        RAluWOp::Remw => rem_signed(a, b, 32),
        RAluWOp::Remuw => b.is_zero().select(a, a.urem(b)),
    }
}

/// RISC-V signed division: x/0 = -1; MIN/-1 = MIN.
fn div_signed(a: BV, b: BV, w: u32) -> BV {
    let minus_one = !BV::lit(w, 0);
    let min = BV::lit(w, 1u128 << (w - 1));
    let overflow = a.eq_(min) & b.eq_(minus_one);
    b.is_zero()
        .select(minus_one, overflow.select(min, a.sdiv(b)))
}

/// RISC-V signed remainder: x%0 = x; MIN%-1 = 0.
fn rem_signed(a: BV, b: BV, w: u32) -> BV {
    let minus_one = !BV::lit(w, 0);
    let min = BV::lit(w, 1u128 << (w - 1));
    let overflow = a.eq_(min) & b.eq_(minus_one);
    b.is_zero()
        .select(a, overflow.select(BV::lit(w, 0), a.srem(b)))
}
