//! RV64I + M + Zicsr instructions with a decoder *and* an encoder.
//!
//! The encoder exists for the paper's §3.4 validation approach: a decoder
//! is hard to audit, an encoder is simple; validating that re-encoding a
//! decoded instruction reproduces the original bytes removes binutils (and
//! this decoder) from the trusted base. [`decode_validated`] performs that
//! check.

/// Conditional-branch comparisons.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BrOp {
    /// Equal.
    Beq,
    /// Not equal.
    Bne,
    /// Signed less-than.
    Blt,
    /// Signed greater-or-equal.
    Bge,
    /// Unsigned less-than.
    Bltu,
    /// Unsigned greater-or-equal.
    Bgeu,
}

/// Load widths and extensions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LdOp {
    /// Load byte, sign-extended.
    Lb,
    /// Load half, sign-extended.
    Lh,
    /// Load word, sign-extended.
    Lw,
    /// Load double.
    Ld,
    /// Load byte, zero-extended.
    Lbu,
    /// Load half, zero-extended.
    Lhu,
    /// Load word, zero-extended.
    Lwu,
}

impl LdOp {
    /// Access width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            LdOp::Lb | LdOp::Lbu => 1,
            LdOp::Lh | LdOp::Lhu => 2,
            LdOp::Lw | LdOp::Lwu => 4,
            LdOp::Ld => 8,
        }
    }
}

/// Store widths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StOp {
    /// Store byte.
    Sb,
    /// Store half.
    Sh,
    /// Store word.
    Sw,
    /// Store double.
    Sd,
}

impl StOp {
    /// Access width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            StOp::Sb => 1,
            StOp::Sh => 2,
            StOp::Sw => 4,
            StOp::Sd => 8,
        }
    }
}

/// Immediate ALU operations (OP-IMM); shifts take the immediate as shamt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IAluOp {
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
}

/// 32-bit immediate ALU operations (OP-IMM-32).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IAluWOp {
    Addiw,
    Slliw,
    Srliw,
    Sraiw,
}

/// Register-register ALU operations (OP), including the M extension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RAluOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
}

/// 32-bit register-register ALU operations (OP-32), including M.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RAluWOp {
    Addw,
    Subw,
    Sllw,
    Srlw,
    Sraw,
    Mulw,
    Divw,
    Divuw,
    Remw,
    Remuw,
}

/// Zicsr operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CsrOp {
    /// Read/write.
    Rw,
    /// Read and set bits.
    Rs,
    /// Read and clear bits.
    Rc,
}

/// CSR source operand: a register or a 5-bit zero-extended immediate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CsrSrc {
    /// Register form (`csrrw`/`csrrs`/`csrrc`).
    Reg(u8),
    /// Immediate form (`csrrwi`/`csrrsi`/`csrrci`).
    Imm(u8),
}

/// An RV64IM+Zicsr instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Insn {
    /// Load upper immediate: `rd ← sext(imm20 << 12)`.
    Lui { rd: u8, imm20: i32 },
    /// Add upper immediate to pc.
    Auipc { rd: u8, imm20: i32 },
    /// Jump and link; `off` is a byte offset from this instruction.
    Jal { rd: u8, off: i32 },
    /// Indirect jump and link.
    Jalr { rd: u8, rs1: u8, off: i32 },
    /// Conditional branch; `off` is a byte offset.
    Branch { op: BrOp, rs1: u8, rs2: u8, off: i32 },
    /// Memory load.
    Load { op: LdOp, rd: u8, rs1: u8, off: i32 },
    /// Memory store.
    Store { op: StOp, rs1: u8, rs2: u8, off: i32 },
    /// Immediate ALU operation.
    OpImm { op: IAluOp, rd: u8, rs1: u8, imm: i32 },
    /// 32-bit immediate ALU operation.
    OpImmW { op: IAluWOp, rd: u8, rs1: u8, imm: i32 },
    /// Register ALU operation.
    Op { op: RAluOp, rd: u8, rs1: u8, rs2: u8 },
    /// 32-bit register ALU operation.
    OpW { op: RAluWOp, rd: u8, rs1: u8, rs2: u8 },
    /// CSR access.
    Csr { op: CsrOp, rd: u8, src: CsrSrc, csr: u16 },
    /// Environment call.
    Ecall,
    /// Breakpoint.
    Ebreak,
    /// Return from machine-mode trap.
    Mret,
    /// Wait for interrupt (no-op here: interrupts are disabled, §3.4).
    Wfi,
    /// Memory fence (no-op on a single in-order core).
    Fence,
}

const OP_LUI: u32 = 0x37;
const OP_AUIPC: u32 = 0x17;
const OP_JAL: u32 = 0x6f;
const OP_JALR: u32 = 0x67;
const OP_BRANCH: u32 = 0x63;
const OP_LOAD: u32 = 0x03;
const OP_STORE: u32 = 0x23;
const OP_OPIMM: u32 = 0x13;
const OP_OP: u32 = 0x33;
const OP_OPIMM32: u32 = 0x1b;
const OP_OP32: u32 = 0x3b;
const OP_MISCMEM: u32 = 0x0f;
const OP_SYSTEM: u32 = 0x73;

fn r_type(f7: u32, rs2: u8, rs1: u8, f3: u32, rd: u8, opcode: u32) -> u32 {
    f7 << 25 | (rs2 as u32) << 20 | (rs1 as u32) << 15 | f3 << 12 | (rd as u32) << 7 | opcode
}

fn i_type(imm: i32, rs1: u8, f3: u32, rd: u8, opcode: u32) -> u32 {
    ((imm as u32) & 0xfff) << 20 | (rs1 as u32) << 15 | f3 << 12 | (rd as u32) << 7 | opcode
}

fn s_type(imm: i32, rs2: u8, rs1: u8, f3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    (imm >> 5 & 0x7f) << 25
        | (rs2 as u32) << 20
        | (rs1 as u32) << 15
        | f3 << 12
        | (imm & 0x1f) << 7
        | opcode
}

fn b_type(off: i32, rs2: u8, rs1: u8, f3: u32, opcode: u32) -> u32 {
    let imm = off as u32;
    (imm >> 12 & 1) << 31
        | (imm >> 5 & 0x3f) << 25
        | (rs2 as u32) << 20
        | (rs1 as u32) << 15
        | f3 << 12
        | (imm >> 1 & 0xf) << 8
        | (imm >> 11 & 1) << 7
        | opcode
}

fn u_type(imm20: i32, rd: u8, opcode: u32) -> u32 {
    ((imm20 as u32) & 0xfffff) << 12 | (rd as u32) << 7 | opcode
}

fn j_type(off: i32, rd: u8, opcode: u32) -> u32 {
    let imm = off as u32;
    (imm >> 20 & 1) << 31
        | (imm >> 1 & 0x3ff) << 21
        | (imm >> 11 & 1) << 20
        | (imm >> 12 & 0xff) << 12
        | (rd as u32) << 7
        | opcode
}

/// Encodes an instruction to its 32-bit machine word.
pub fn encode(i: Insn) -> u32 {
    match i {
        Insn::Lui { rd, imm20 } => u_type(imm20, rd, OP_LUI),
        Insn::Auipc { rd, imm20 } => u_type(imm20, rd, OP_AUIPC),
        Insn::Jal { rd, off } => j_type(off, rd, OP_JAL),
        Insn::Jalr { rd, rs1, off } => i_type(off, rs1, 0, rd, OP_JALR),
        Insn::Branch { op, rs1, rs2, off } => {
            let f3 = match op {
                BrOp::Beq => 0,
                BrOp::Bne => 1,
                BrOp::Blt => 4,
                BrOp::Bge => 5,
                BrOp::Bltu => 6,
                BrOp::Bgeu => 7,
            };
            b_type(off, rs2, rs1, f3, OP_BRANCH)
        }
        Insn::Load { op, rd, rs1, off } => {
            let f3 = match op {
                LdOp::Lb => 0,
                LdOp::Lh => 1,
                LdOp::Lw => 2,
                LdOp::Ld => 3,
                LdOp::Lbu => 4,
                LdOp::Lhu => 5,
                LdOp::Lwu => 6,
            };
            i_type(off, rs1, f3, rd, OP_LOAD)
        }
        Insn::Store { op, rs1, rs2, off } => {
            let f3 = match op {
                StOp::Sb => 0,
                StOp::Sh => 1,
                StOp::Sw => 2,
                StOp::Sd => 3,
            };
            s_type(off, rs2, rs1, f3, OP_STORE)
        }
        Insn::OpImm { op, rd, rs1, imm } => match op {
            IAluOp::Addi => i_type(imm, rs1, 0, rd, OP_OPIMM),
            IAluOp::Slti => i_type(imm, rs1, 2, rd, OP_OPIMM),
            IAluOp::Sltiu => i_type(imm, rs1, 3, rd, OP_OPIMM),
            IAluOp::Xori => i_type(imm, rs1, 4, rd, OP_OPIMM),
            IAluOp::Ori => i_type(imm, rs1, 6, rd, OP_OPIMM),
            IAluOp::Andi => i_type(imm, rs1, 7, rd, OP_OPIMM),
            IAluOp::Slli => i_type(imm & 0x3f, rs1, 1, rd, OP_OPIMM),
            IAluOp::Srli => i_type(imm & 0x3f, rs1, 5, rd, OP_OPIMM),
            IAluOp::Srai => i_type((imm & 0x3f) | 0x400, rs1, 5, rd, OP_OPIMM),
        },
        Insn::OpImmW { op, rd, rs1, imm } => match op {
            IAluWOp::Addiw => i_type(imm, rs1, 0, rd, OP_OPIMM32),
            IAluWOp::Slliw => i_type(imm & 0x1f, rs1, 1, rd, OP_OPIMM32),
            IAluWOp::Srliw => i_type(imm & 0x1f, rs1, 5, rd, OP_OPIMM32),
            IAluWOp::Sraiw => i_type((imm & 0x1f) | 0x400, rs1, 5, rd, OP_OPIMM32),
        },
        Insn::Op { op, rd, rs1, rs2 } => {
            let (f7, f3) = match op {
                RAluOp::Add => (0x00, 0),
                RAluOp::Sub => (0x20, 0),
                RAluOp::Sll => (0x00, 1),
                RAluOp::Slt => (0x00, 2),
                RAluOp::Sltu => (0x00, 3),
                RAluOp::Xor => (0x00, 4),
                RAluOp::Srl => (0x00, 5),
                RAluOp::Sra => (0x20, 5),
                RAluOp::Or => (0x00, 6),
                RAluOp::And => (0x00, 7),
                RAluOp::Mul => (0x01, 0),
                RAluOp::Mulh => (0x01, 1),
                RAluOp::Mulhsu => (0x01, 2),
                RAluOp::Mulhu => (0x01, 3),
                RAluOp::Div => (0x01, 4),
                RAluOp::Divu => (0x01, 5),
                RAluOp::Rem => (0x01, 6),
                RAluOp::Remu => (0x01, 7),
            };
            r_type(f7, rs2, rs1, f3, rd, OP_OP)
        }
        Insn::OpW { op, rd, rs1, rs2 } => {
            let (f7, f3) = match op {
                RAluWOp::Addw => (0x00, 0),
                RAluWOp::Subw => (0x20, 0),
                RAluWOp::Sllw => (0x00, 1),
                RAluWOp::Srlw => (0x00, 5),
                RAluWOp::Sraw => (0x20, 5),
                RAluWOp::Mulw => (0x01, 0),
                RAluWOp::Divw => (0x01, 4),
                RAluWOp::Divuw => (0x01, 5),
                RAluWOp::Remw => (0x01, 6),
                RAluWOp::Remuw => (0x01, 7),
            };
            r_type(f7, rs2, rs1, f3, rd, OP_OP32)
        }
        Insn::Csr { op, rd, src, csr } => {
            let (f3base, field) = match src {
                CsrSrc::Reg(rs1) => (1, rs1),
                CsrSrc::Imm(zimm) => (5, zimm),
            };
            let f3 = match op {
                CsrOp::Rw => f3base,
                CsrOp::Rs => f3base + 1,
                CsrOp::Rc => f3base + 2,
            };
            (csr as u32) << 20 | (field as u32) << 15 | f3 << 12 | (rd as u32) << 7 | OP_SYSTEM
        }
        Insn::Ecall => 0x0000_0073,
        Insn::Ebreak => 0x0010_0073,
        Insn::Mret => 0x3020_0073,
        Insn::Wfi => 0x1050_0073,
        Insn::Fence => 0x0000_000f,
    }
}

fn sext(v: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((v << shift) as i32) >> shift
}

/// Decodes a 32-bit machine word.
pub fn decode(w: u32) -> Result<Insn, String> {
    let opcode = w & 0x7f;
    let rd = (w >> 7 & 0x1f) as u8;
    let f3 = w >> 12 & 7;
    let rs1 = (w >> 15 & 0x1f) as u8;
    let rs2 = (w >> 20 & 0x1f) as u8;
    let f7 = w >> 25;
    let i_imm = sext(w >> 20, 12);
    match opcode {
        OP_LUI => Ok(Insn::Lui {
            rd,
            imm20: sext(w >> 12, 20),
        }),
        OP_AUIPC => Ok(Insn::Auipc {
            rd,
            imm20: sext(w >> 12, 20),
        }),
        OP_JAL => {
            let imm = (w >> 31 & 1) << 20
                | (w >> 21 & 0x3ff) << 1
                | (w >> 20 & 1) << 11
                | (w >> 12 & 0xff) << 12;
            Ok(Insn::Jal {
                rd,
                off: sext(imm, 21),
            })
        }
        OP_JALR if f3 == 0 => Ok(Insn::Jalr {
            rd,
            rs1,
            off: i_imm,
        }),
        OP_BRANCH => {
            let imm = (w >> 31 & 1) << 12
                | (w >> 25 & 0x3f) << 5
                | (w >> 8 & 0xf) << 1
                | (w >> 7 & 1) << 11;
            let off = sext(imm, 13);
            let op = match f3 {
                0 => BrOp::Beq,
                1 => BrOp::Bne,
                4 => BrOp::Blt,
                5 => BrOp::Bge,
                6 => BrOp::Bltu,
                7 => BrOp::Bgeu,
                _ => return Err(format!("bad branch funct3 {f3}")),
            };
            Ok(Insn::Branch { op, rs1, rs2, off })
        }
        OP_LOAD => {
            let op = match f3 {
                0 => LdOp::Lb,
                1 => LdOp::Lh,
                2 => LdOp::Lw,
                3 => LdOp::Ld,
                4 => LdOp::Lbu,
                5 => LdOp::Lhu,
                6 => LdOp::Lwu,
                _ => return Err(format!("bad load funct3 {f3}")),
            };
            Ok(Insn::Load {
                op,
                rd,
                rs1,
                off: i_imm,
            })
        }
        OP_STORE => {
            let op = match f3 {
                0 => StOp::Sb,
                1 => StOp::Sh,
                2 => StOp::Sw,
                3 => StOp::Sd,
                _ => return Err(format!("bad store funct3 {f3}")),
            };
            let imm = (w >> 25) << 5 | (w >> 7 & 0x1f);
            Ok(Insn::Store {
                op,
                rs1,
                rs2,
                off: sext(imm, 12),
            })
        }
        OP_OPIMM => {
            let op = match f3 {
                0 => IAluOp::Addi,
                2 => IAluOp::Slti,
                3 => IAluOp::Sltiu,
                4 => IAluOp::Xori,
                6 => IAluOp::Ori,
                7 => IAluOp::Andi,
                1 => {
                    if w >> 26 != 0 {
                        return Err("bad slli funct6".into());
                    }
                    IAluOp::Slli
                }
                5 => match w >> 26 {
                    0x00 => IAluOp::Srli,
                    0x10 => IAluOp::Srai,
                    other => return Err(format!("bad shift funct6 {other:#x}")),
                },
                _ => unreachable!(),
            };
            let imm = match op {
                IAluOp::Slli | IAluOp::Srli | IAluOp::Srai => (w >> 20 & 0x3f) as i32,
                _ => i_imm,
            };
            Ok(Insn::OpImm { op, rd, rs1, imm })
        }
        OP_OPIMM32 => {
            let op = match f3 {
                0 => IAluWOp::Addiw,
                1 => {
                    if f7 != 0 {
                        return Err("bad slliw funct7".into());
                    }
                    IAluWOp::Slliw
                }
                5 => match f7 {
                    0x00 => IAluWOp::Srliw,
                    0x20 => IAluWOp::Sraiw,
                    other => return Err(format!("bad shiftw funct7 {other:#x}")),
                },
                _ => return Err(format!("bad op-imm-32 funct3 {f3}")),
            };
            let imm = match op {
                IAluWOp::Addiw => i_imm,
                _ => (w >> 20 & 0x1f) as i32,
            };
            Ok(Insn::OpImmW { op, rd, rs1, imm })
        }
        OP_OP => {
            let op = match (f7, f3) {
                (0x00, 0) => RAluOp::Add,
                (0x20, 0) => RAluOp::Sub,
                (0x00, 1) => RAluOp::Sll,
                (0x00, 2) => RAluOp::Slt,
                (0x00, 3) => RAluOp::Sltu,
                (0x00, 4) => RAluOp::Xor,
                (0x00, 5) => RAluOp::Srl,
                (0x20, 5) => RAluOp::Sra,
                (0x00, 6) => RAluOp::Or,
                (0x00, 7) => RAluOp::And,
                (0x01, 0) => RAluOp::Mul,
                (0x01, 1) => RAluOp::Mulh,
                (0x01, 2) => RAluOp::Mulhsu,
                (0x01, 3) => RAluOp::Mulhu,
                (0x01, 4) => RAluOp::Div,
                (0x01, 5) => RAluOp::Divu,
                (0x01, 6) => RAluOp::Rem,
                (0x01, 7) => RAluOp::Remu,
                _ => return Err(format!("bad op funct7/funct3 {f7:#x}/{f3}")),
            };
            Ok(Insn::Op { op, rd, rs1, rs2 })
        }
        OP_OP32 => {
            let op = match (f7, f3) {
                (0x00, 0) => RAluWOp::Addw,
                (0x20, 0) => RAluWOp::Subw,
                (0x00, 1) => RAluWOp::Sllw,
                (0x00, 5) => RAluWOp::Srlw,
                (0x20, 5) => RAluWOp::Sraw,
                (0x01, 0) => RAluWOp::Mulw,
                (0x01, 4) => RAluWOp::Divw,
                (0x01, 5) => RAluWOp::Divuw,
                (0x01, 6) => RAluWOp::Remw,
                (0x01, 7) => RAluWOp::Remuw,
                _ => return Err(format!("bad op-32 funct7/funct3 {f7:#x}/{f3}")),
            };
            Ok(Insn::OpW { op, rd, rs1, rs2 })
        }
        OP_MISCMEM => Ok(Insn::Fence),
        OP_SYSTEM => match f3 {
            0 => match w {
                0x0000_0073 => Ok(Insn::Ecall),
                0x0010_0073 => Ok(Insn::Ebreak),
                0x3020_0073 => Ok(Insn::Mret),
                0x1050_0073 => Ok(Insn::Wfi),
                _ => Err(format!("bad system word {w:#x}")),
            },
            1..=3 | 5..=7 => {
                let csr = (w >> 20) as u16;
                let field = rs1;
                let (op, src) = match f3 {
                    1 => (CsrOp::Rw, CsrSrc::Reg(field)),
                    2 => (CsrOp::Rs, CsrSrc::Reg(field)),
                    3 => (CsrOp::Rc, CsrSrc::Reg(field)),
                    5 => (CsrOp::Rw, CsrSrc::Imm(field)),
                    6 => (CsrOp::Rs, CsrSrc::Imm(field)),
                    7 => (CsrOp::Rc, CsrSrc::Imm(field)),
                    _ => unreachable!(),
                };
                Ok(Insn::Csr { op, rd, src, csr })
            }
            _ => Err(format!("bad system funct3 {f3}")),
        },
        _ => Err(format!("unknown opcode {opcode:#x} in word {w:#010x}")),
    }
}

/// Decodes with the §3.4 validation: the decoded instruction must
/// re-encode to the original word, otherwise decoding is rejected.
pub fn decode_validated(w: u32) -> Result<Insn, String> {
    let i = decode(w)?;
    let back = encode(i);
    if back != w {
        return Err(format!(
            "decode/encode mismatch: {w:#010x} decoded to {i:?} which encodes to {back:#010x}"
        ));
    }
    Ok(i)
}
