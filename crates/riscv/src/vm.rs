//! A specification of Sv39 three-level address translation (paper §6.1).
//!
//! The monitors run in M-mode with paging disabled; S/U-mode code is not
//! interpreted, but its memory accesses are *modelled*: the paper verifies
//! the monitors against "a specification of PMP and a three-level page
//! walk". This module provides that page-walk specification over the
//! typed memory model, used by specifications and litmus tests to reason
//! about what an S/U-mode access to a virtual address can reach, in
//! combination with [`crate::pmp`].
//!
//! Only the pieces the security arguments need are modelled: valid/leaf
//! bits, permission bits, and the three-level PPN structure. A-/D-bit
//! updates and superpage alignment faults are out of scope (the ported
//! monitors avoid superpages after the U54 PMP erratum, paper §6.4).

use crate::machine::Csrs;
use crate::pmp::Access;
use serval_core::Mem;
use serval_smt::{SBool, BV};
use serval_sym::SymCtx;

/// PTE permission bits.
const PTE_V: u128 = 1 << 0;
const PTE_R: u128 = 1 << 1;
const PTE_W: u128 = 1 << 2;
const PTE_X: u128 = 1 << 3;

/// The result of a modelled S/U-mode access: whether translation (and the
/// subsequent PMP check) allows it, and the physical address it reaches.
#[derive(Clone, Copy, Debug)]
pub struct Translation {
    /// The access is architecturally allowed.
    pub ok: SBool,
    /// The translated physical address (meaningful when `ok`).
    pub paddr: BV,
}

/// The page-table root from `satp` (mode field ignored: the monitors pin
/// satp via TVM, and the specification is only consulted under Sv39).
pub fn root_of(csrs: &Csrs) -> BV {
    (csrs.satp & BV::lit(64, (1u128 << 44) - 1)).shl(BV::lit(64, 12))
}

/// Walks the three-level Sv39 table rooted at `root` for `vaddr`.
///
/// Loads page-table entries through the typed memory model (so walks
/// interact with the monitor's view of memory and produce the usual
/// bounds obligations). Returns the translation result; a non-canonical
/// address, an invalid entry, a permission mismatch, or a non-leaf at the
/// last level all yield `ok = false`.
pub fn walk(
    ctx: &mut SymCtx,
    mem: &mut Mem,
    root: BV,
    vaddr: BV,
    access: Access,
) -> Translation {
    let mut ok = SBool::lit(true);
    // Canonicality: bits 63..39 replicate bit 38.
    let sext = vaddr.extract(38, 0).sext(64);
    ok = ok & vaddr.eq_(sext);

    let mut table = root;
    let mut paddr = BV::lit(64, 0);
    let mut done = SBool::lit(false);
    for level in (0..3u32).rev() {
        let vpn = vaddr
            .lshr(BV::lit(64, (12 + 9 * level) as u128))
            & BV::lit(64, 0x1ff);
        let pte_addr = table + vpn.shl(BV::lit(64, 3));
        let pte = mem.load(ctx, pte_addr, 8);
        let valid = (pte & BV::lit(64, PTE_V)).ne_(BV::lit(64, 0));
        let r = (pte & BV::lit(64, PTE_R)).ne_(BV::lit(64, 0));
        let w = (pte & BV::lit(64, PTE_W)).ne_(BV::lit(64, 0));
        let x = (pte & BV::lit(64, PTE_X)).ne_(BV::lit(64, 0));
        let leaf = r | x;
        let perm = match access {
            Access::R => r,
            Access::W => w,
            Access::X => x,
        };
        let ppn = pte.lshr(BV::lit(64, 10)) & BV::lit(64, (1u128 << 44) - 1);
        let base = ppn.shl(BV::lit(64, 12));
        // Leaf at this level: translate (superpages must be aligned; the
        // monitors only map 4 KiB pages, so only level 0 leaves are
        // considered valid here — see the module docs).
        let here_ok = valid
            & leaf
            & perm
            & if level == 0 {
                SBool::lit(true)
            } else {
                SBool::lit(false)
            };
        let offset = vaddr & BV::lit(64, 0xfff);
        let this_paddr = base + offset;
        let take = !done & here_ok;
        paddr = take.select(this_paddr, paddr);
        done = done | take;
        // Otherwise descend; an invalid or unexpected-leaf entry faults.
        let descend_ok = valid & !leaf;
        ok = ok & (done | descend_ok);
        table = base;
    }
    Translation {
        ok: ok & done,
        paddr,
    }
}

/// An S/U-mode access is allowed iff the page walk succeeds *and* the
/// resulting physical address passes PMP (paper §6.1: both mechanisms
/// compose).
pub fn su_access_allowed(
    ctx: &mut SymCtx,
    mem: &mut Mem,
    csrs: &Csrs,
    vaddr: BV,
    access: Access,
) -> Translation {
    let t = walk(ctx, mem, root_of(csrs), vaddr, access);
    let pmp_ok = crate::pmp::pmp_allows(csrs, t.paddr, access);
    Translation {
        ok: t.ok & pmp_ok,
        paddr: t.paddr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serval_core::{Layout, MemCfg, PathElem};
    use serval_smt::{reset_ctx, verify};

    const ROOT: u64 = 0x8100_0000;
    const L2: u64 = 0x8100_1000;
    const L3: u64 = 0x8100_2000;
    const FRAME: u64 = 0x8400_0000;

    /// Builds a table mapping vaddr 0x40_0000_0000-ish... actually maps
    /// virtual page (vpn2=1, vpn1=2, vpn0=3) to FRAME, read+write.
    fn table_mem() -> Mem {
        let mut mem = Mem::new(MemCfg::default());
        for (name, base) in [("l1", ROOT), ("l2", L2), ("l3", L3)] {
            mem.add_region(
                name,
                base,
                Layout::Array(512, Box::new(Layout::Cell(8))).instantiate_zero(name),
            );
        }
        let nonleaf = |next: u64| BV::lit(64, (((next >> 12) as u128) << 10) | PTE_V);
        let leaf = |frame: u64| {
            BV::lit(
                64,
                (((frame >> 12) as u128) << 10) | PTE_V | PTE_R | PTE_W,
            )
        };
        let mut m = mem;
        m.write_path("l1", &[PathElem::Index(1)], nonleaf(L2));
        m.write_path("l2", &[PathElem::Index(2)], nonleaf(L3));
        m.write_path("l3", &[PathElem::Index(3)], leaf(FRAME));
        m
    }

    fn vaddr(vpn2: u64, vpn1: u64, vpn0: u64, off: u64) -> u64 {
        // Canonical Sv39 with bit 38 clear.
        vpn2 << 30 | vpn1 << 21 | vpn0 << 12 | off
    }

    #[test]
    fn mapped_page_translates() {
        reset_ctx();
        let mut ctx = SymCtx::new();
        let mut mem = table_mem();
        let va = BV::lit(64, vaddr(1, 2, 3, 0x123) as u128);
        let t = walk(&mut ctx, &mut mem, BV::lit(64, ROOT as u128), va, Access::R);
        assert!(verify(&[], t.ok).is_proved());
        assert_eq!(t.paddr.as_const(), Some((FRAME + 0x123) as u128));
        // Writable too; not executable.
        let t = walk(&mut ctx, &mut mem, BV::lit(64, ROOT as u128), va, Access::W);
        assert!(verify(&[], t.ok).is_proved());
        let t = walk(&mut ctx, &mut mem, BV::lit(64, ROOT as u128), va, Access::X);
        assert!(verify(&[], !t.ok).is_proved());
    }

    #[test]
    fn unmapped_page_faults() {
        reset_ctx();
        let mut ctx = SymCtx::new();
        let mut mem = table_mem();
        let va = BV::lit(64, vaddr(1, 2, 4, 0) as u128); // vpn0=4 unmapped
        let t = walk(&mut ctx, &mut mem, BV::lit(64, ROOT as u128), va, Access::R);
        assert!(verify(&[], !t.ok).is_proved());
    }

    #[test]
    fn non_canonical_address_faults() {
        reset_ctx();
        let mut ctx = SymCtx::new();
        let mut mem = table_mem();
        let va = BV::lit(64, 1u128 << 40 | vaddr(1, 2, 3, 0) as u128);
        let t = walk(&mut ctx, &mut mem, BV::lit(64, ROOT as u128), va, Access::R);
        assert!(verify(&[], !t.ok).is_proved());
    }

    #[test]
    fn symbolic_offset_stays_in_frame() {
        reset_ctx();
        // For any offset, a translated access lands inside the mapped
        // 4 KiB frame — the isolation fact specifications rely on.
        let mut ctx = SymCtx::new();
        let mut mem = table_mem();
        let off = BV::fresh(64, "off");
        ctx.assume(off.ult(BV::lit(64, 0x1000)));
        let va = BV::lit(64, vaddr(1, 2, 3, 0) as u128) | off;
        let t = walk(&mut ctx, &mut mem, BV::lit(64, ROOT as u128), va, Access::R);
        let assumptions: Vec<_> = ctx.assumptions().to_vec();
        let inside = t.paddr.uge(BV::lit(64, FRAME as u128))
            & t.paddr.ult(BV::lit(64, (FRAME + 0x1000) as u128));
        assert!(
            serval_smt::solver::verify_with(
                serval_smt::solver::SolverConfig::default(),
                &assumptions,
                t.ok.implies(inside)
            )
            .is_proved()
        );
    }

    #[test]
    fn composes_with_pmp() {
        reset_ctx();
        let mut ctx = SymCtx::new();
        let mut mem = table_mem();
        let mut csrs = Csrs::reset();
        csrs.satp = BV::lit(64, (ROOT >> 12) as u128);
        // PMP denies everything (all entries OFF): no access allowed even
        // though the walk succeeds.
        let va = BV::lit(64, vaddr(1, 2, 3, 0) as u128);
        let t = su_access_allowed(&mut ctx, &mut mem, &csrs, va, Access::R);
        assert!(verify(&[], !t.ok).is_proved());
        // Open a PMP window over the frame: access allowed.
        csrs.pmpaddr[0] = BV::lit(64, (FRAME >> 2) as u128);
        csrs.pmpaddr[1] = BV::lit(64, ((FRAME + 0x1000) >> 2) as u128);
        csrs.pmpcfg0 = BV::lit(
            64,
            (crate::pmp::tor_cfg(false, false, false) as u128)
                | (crate::pmp::tor_cfg(true, true, false) as u128) << 8,
        );
        let t = su_access_allowed(&mut ctx, &mut mem, &csrs, va, Access::R);
        assert!(verify(&[], t.ok).is_proved());
    }
}
