//! RV64 machine state: registers, CSRs, and typed memory.

use serval_core::Mem;
use serval_smt::{SBool, BV};
use serval_sym::{Merge, SymCtx};

/// Privilege modes (paper §6.1). Monitor code under verification always
/// executes in M-mode; S/U code is never interpreted, only modelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// User mode.
    U,
    /// Supervisor mode.
    S,
    /// Machine mode.
    M,
}

/// CSR numbers used by the monitors.
pub mod csr {
    pub const SATP: u16 = 0x180;
    pub const MSTATUS: u16 = 0x300;
    pub const MEDELEG: u16 = 0x302;
    pub const MIE: u16 = 0x304;
    pub const MTVEC: u16 = 0x305;
    pub const MSCRATCH: u16 = 0x340;
    pub const MEPC: u16 = 0x341;
    pub const MCAUSE: u16 = 0x342;
    pub const MTVAL: u16 = 0x343;
    pub const PMPCFG0: u16 = 0x3a0;
    pub const PMPADDR0: u16 = 0x3b0;
    pub const MHARTID: u16 = 0xf14;
}

/// The control and status registers modelled by the verifier: the Zicsr
/// state the two security monitors manipulate (trap handling, PMP, paging).
#[derive(Clone, Debug)]
pub struct Csrs {
    pub mstatus: BV,
    pub medeleg: BV,
    pub mie: BV,
    pub mtvec: BV,
    pub mscratch: BV,
    pub mepc: BV,
    pub mcause: BV,
    pub mtval: BV,
    pub satp: BV,
    pub mhartid: BV,
    /// PMP configuration (8 entries packed into pmpcfg0, RV64 layout).
    pub pmpcfg0: BV,
    /// PMP address registers.
    pub pmpaddr: Vec<BV>,
}

impl Csrs {
    /// Fully symbolic CSRs (trap-handler verification; paper §3.4).
    pub fn fresh(tag: &str) -> Csrs {
        let f = |n: &str| BV::fresh(64, &format!("{tag}.{n}"));
        Csrs {
            mstatus: f("mstatus"),
            medeleg: f("medeleg"),
            mie: f("mie"),
            mtvec: f("mtvec"),
            mscratch: f("mscratch"),
            mepc: f("mepc"),
            mcause: f("mcause"),
            mtval: f("mtval"),
            satp: f("satp"),
            mhartid: f("mhartid"),
            pmpcfg0: f("pmpcfg0"),
            pmpaddr: (0..8).map(|i| f(&format!("pmpaddr{i}"))).collect(),
        }
    }

    /// The architectural reset state (boot verification; paper §3.4).
    pub fn reset() -> Csrs {
        let z = BV::lit(64, 0);
        Csrs {
            mstatus: z,
            medeleg: z,
            mie: z,
            mtvec: z,
            mscratch: z,
            mepc: z,
            mcause: z,
            mtval: z,
            satp: z,
            mhartid: z,
            pmpcfg0: z,
            pmpaddr: vec![z; 8],
        }
    }

    /// Reads a CSR by number.
    pub fn read(&self, n: u16) -> Option<BV> {
        use csr::*;
        Some(match n {
            SATP => self.satp,
            MSTATUS => self.mstatus,
            MEDELEG => self.medeleg,
            MIE => self.mie,
            MTVEC => self.mtvec,
            MSCRATCH => self.mscratch,
            MEPC => self.mepc,
            MCAUSE => self.mcause,
            MTVAL => self.mtval,
            PMPCFG0 => self.pmpcfg0,
            MHARTID => self.mhartid,
            n if (PMPADDR0..PMPADDR0 + 8).contains(&n) => {
                self.pmpaddr[(n - PMPADDR0) as usize]
            }
            _ => return None,
        })
    }

    /// Writes a CSR by number. Returns false for unknown CSRs.
    pub fn write(&mut self, n: u16, v: BV) -> bool {
        use csr::*;
        match n {
            SATP => self.satp = v,
            MSTATUS => self.mstatus = v,
            MEDELEG => self.medeleg = v,
            MIE => self.mie = v,
            MTVEC => self.mtvec = v,
            MSCRATCH => self.mscratch = v,
            MEPC => self.mepc = v,
            MCAUSE => self.mcause = v,
            MTVAL => self.mtval = v,
            PMPCFG0 => self.pmpcfg0 = v,
            MHARTID => {} // read-only; writes are ignored
            n if (PMPADDR0..PMPADDR0 + 8).contains(&n) => {
                self.pmpaddr[(n - PMPADDR0) as usize] = v
            }
            _ => return false,
        }
        true
    }
}

impl Merge for Csrs {
    fn merge(c: SBool, t: &Self, e: &Self) -> Self {
        Csrs {
            mstatus: BV::merge(c, &t.mstatus, &e.mstatus),
            medeleg: BV::merge(c, &t.medeleg, &e.medeleg),
            mie: BV::merge(c, &t.mie, &e.mie),
            mtvec: BV::merge(c, &t.mtvec, &e.mtvec),
            mscratch: BV::merge(c, &t.mscratch, &e.mscratch),
            mepc: BV::merge(c, &t.mepc, &e.mepc),
            mcause: BV::merge(c, &t.mcause, &e.mcause),
            mtval: BV::merge(c, &t.mtval, &e.mtval),
            satp: BV::merge(c, &t.satp, &e.satp),
            mhartid: BV::merge(c, &t.mhartid, &e.mhartid),
            pmpcfg0: BV::merge(c, &t.pmpcfg0, &e.pmpcfg0),
            pmpaddr: Vec::merge(c, &t.pmpaddr, &e.pmpaddr),
        }
    }
}

/// The full machine state under symbolic evaluation.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Program counter.
    pub pc: BV,
    /// Integer registers; index 0 is hard-wired zero (use the accessors).
    pub regs: Vec<BV>,
    /// Control and status registers.
    pub csrs: Csrs,
    /// Typed memory (paper §3.4).
    pub mem: Mem,
}

impl Machine {
    /// A machine with fully symbolic registers and CSRs at the given entry
    /// point — the architecturally-defined trap-entry state (paper §3.4).
    pub fn fresh_at(pc: u64, mem: Mem, tag: &str) -> Machine {
        let mut regs: Vec<BV> = (0..32)
            .map(|i| BV::fresh(64, &format!("{tag}.x{i}")))
            .collect();
        regs[0] = BV::lit(64, 0);
        Machine {
            pc: BV::lit(64, pc as u128),
            regs,
            csrs: Csrs::fresh(tag),
            mem,
        }
    }

    /// A machine in the architectural reset state (boot verification).
    pub fn reset_at(pc: u64, mem: Mem) -> Machine {
        Machine {
            pc: BV::lit(64, pc as u128),
            regs: vec![BV::lit(64, 0); 32],
            csrs: Csrs::reset(),
            mem,
        }
    }

    /// Reads register `r` (x0 reads as zero).
    pub fn reg(&self, r: u8) -> BV {
        if r == 0 {
            BV::lit(64, 0)
        } else {
            self.regs[r as usize]
        }
    }

    /// Writes register `r` (writes to x0 are dropped).
    pub fn set_reg(&mut self, r: u8, v: BV) {
        debug_assert_eq!(v.width(), 64);
        if r != 0 {
            self.regs[r as usize] = v;
        }
    }

    /// Loads from memory, recording UB obligations in `ctx`.
    pub fn load(&mut self, ctx: &mut SymCtx, addr: BV, bytes: u32) -> BV {
        self.mem.load(ctx, addr, bytes)
    }

    /// Stores to memory, recording UB obligations in `ctx`.
    pub fn store(&mut self, ctx: &mut SymCtx, addr: BV, val: BV, bytes: u32) {
        self.mem.store(ctx, addr, val, bytes)
    }
}

impl Merge for Machine {
    fn merge(c: SBool, t: &Self, e: &Self) -> Self {
        Machine {
            pc: BV::merge(c, &t.pc, &e.pc),
            regs: Vec::merge(c, &t.regs, &e.regs),
            csrs: Csrs::merge(c, &t.csrs, &e.csrs),
            mem: Mem::merge(c, &t.mem, &e.mem),
        }
    }
}
