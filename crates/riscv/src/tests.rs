//! RISC-V verifier tests: golden encodings, encoder/decoder round-trips,
//! riscv-tests-style instruction semantics, and symbolic handler runs.

use crate::insn::*;
use crate::machine::{csr, Machine};
use crate::reg::*;
use crate::{Asm, Interp};
use serval_check::prelude::*;
use serval_core::{Layout, Mem, MemCfg};
use serval_smt::{reset_ctx, verify, BV};
use serval_sym::SymCtx;

// ---------------------------------------------------------------------
// Encoder/decoder
// ---------------------------------------------------------------------

#[test]
fn golden_encodings() {
    // Hand-checked words (matching binutils output).
    let cases: Vec<(Insn, u32)> = vec![
        (
            Insn::OpImm { op: IAluOp::Addi, rd: 1, rs1: 2, imm: 3 },
            0x0031_0093,
        ),
        (
            Insn::OpImm { op: IAluOp::Addi, rd: 0, rs1: 0, imm: 0 },
            0x0000_0013, // nop
        ),
        (Insn::Jalr { rd: 0, rs1: RA, off: 0 }, 0x0000_8067), // ret
        (Insn::Ecall, 0x0000_0073),
        (Insn::Ebreak, 0x0010_0073),
        (Insn::Mret, 0x3020_0073),
        (Insn::Op { op: RAluOp::Add, rd: 3, rs1: 1, rs2: 2 }, 0x0020_81b3),
        (Insn::Lui { rd: 5, imm20: 0x12345 }, 0x1234_52b7),
    ];
    for (insn, word) in cases {
        assert_eq!(encode(insn), word, "{insn:?}");
        assert_eq!(decode(word).unwrap(), insn);
    }
}

fn arb_insn() -> impl Strategy<Value = Insn> {
    let r = 0u8..32;
    let imm12 = -2048i32..2048;
    let sh6 = 0i32..64;
    let sh5 = 0i32..32;
    prop_oneof![
        (r.clone(), -(1i32 << 19)..(1 << 19)).prop_map(|(rd, imm20)| Insn::Lui { rd, imm20 }),
        (r.clone(), -(1i32 << 19)..(1 << 19)).prop_map(|(rd, imm20)| Insn::Auipc { rd, imm20 }),
        (r.clone(), (-(1i32 << 19)..(1 << 19)).prop_map(|x| x * 2))
            .prop_map(|(rd, off)| Insn::Jal { rd, off }),
        (r.clone(), r.clone(), imm12.clone())
            .prop_map(|(rd, rs1, off)| Insn::Jalr { rd, rs1, off }),
        (
            prop_oneof![
                Just(BrOp::Beq), Just(BrOp::Bne), Just(BrOp::Blt),
                Just(BrOp::Bge), Just(BrOp::Bltu), Just(BrOp::Bgeu)
            ],
            r.clone(), r.clone(),
            (-(1i32 << 11)..(1 << 11)).prop_map(|x| x * 2)
        ).prop_map(|(op, rs1, rs2, off)| Insn::Branch { op, rs1, rs2, off }),
        (
            prop_oneof![
                Just(LdOp::Lb), Just(LdOp::Lh), Just(LdOp::Lw), Just(LdOp::Ld),
                Just(LdOp::Lbu), Just(LdOp::Lhu), Just(LdOp::Lwu)
            ],
            r.clone(), r.clone(), imm12.clone()
        ).prop_map(|(op, rd, rs1, off)| Insn::Load { op, rd, rs1, off }),
        (
            prop_oneof![Just(StOp::Sb), Just(StOp::Sh), Just(StOp::Sw), Just(StOp::Sd)],
            r.clone(), r.clone(), imm12.clone()
        ).prop_map(|(op, rs1, rs2, off)| Insn::Store { op, rs1, rs2, off }),
        (
            prop_oneof![
                Just(IAluOp::Addi), Just(IAluOp::Slti), Just(IAluOp::Sltiu),
                Just(IAluOp::Xori), Just(IAluOp::Ori), Just(IAluOp::Andi)
            ],
            r.clone(), r.clone(), imm12.clone()
        ).prop_map(|(op, rd, rs1, imm)| Insn::OpImm { op, rd, rs1, imm }),
        (
            prop_oneof![Just(IAluOp::Slli), Just(IAluOp::Srli), Just(IAluOp::Srai)],
            r.clone(), r.clone(), sh6
        ).prop_map(|(op, rd, rs1, imm)| Insn::OpImm { op, rd, rs1, imm }),
        (
            prop_oneof![Just(IAluWOp::Slliw), Just(IAluWOp::Srliw), Just(IAluWOp::Sraiw)],
            r.clone(), r.clone(), sh5
        ).prop_map(|(op, rd, rs1, imm)| Insn::OpImmW { op, rd, rs1, imm }),
        (
            prop_oneof![
                Just(RAluOp::Add), Just(RAluOp::Sub), Just(RAluOp::Sll), Just(RAluOp::Slt),
                Just(RAluOp::Sltu), Just(RAluOp::Xor), Just(RAluOp::Srl), Just(RAluOp::Sra),
                Just(RAluOp::Or), Just(RAluOp::And), Just(RAluOp::Mul), Just(RAluOp::Mulh),
                Just(RAluOp::Mulhsu), Just(RAluOp::Mulhu), Just(RAluOp::Div),
                Just(RAluOp::Divu), Just(RAluOp::Rem), Just(RAluOp::Remu)
            ],
            r.clone(), r.clone(), r.clone()
        ).prop_map(|(op, rd, rs1, rs2)| Insn::Op { op, rd, rs1, rs2 }),
        (
            prop_oneof![
                Just(RAluWOp::Addw), Just(RAluWOp::Subw), Just(RAluWOp::Sllw),
                Just(RAluWOp::Srlw), Just(RAluWOp::Sraw), Just(RAluWOp::Mulw),
                Just(RAluWOp::Divw), Just(RAluWOp::Divuw), Just(RAluWOp::Remw),
                Just(RAluWOp::Remuw)
            ],
            r.clone(), r.clone(), r.clone()
        ).prop_map(|(op, rd, rs1, rs2)| Insn::OpW { op, rd, rs1, rs2 }),
        (
            prop_oneof![Just(CsrOp::Rw), Just(CsrOp::Rs), Just(CsrOp::Rc)],
            r.clone(), r.clone(), any::<bool>(), 0u16..4096
        ).prop_map(|(op, rd, f, imm_form, csrn)| Insn::Csr {
            op, rd,
            src: if imm_form { CsrSrc::Imm(f & 0x1f) } else { CsrSrc::Reg(f) },
            csr: csrn
        }),
        Just(Insn::Ecall),
        Just(Insn::Mret),
        Just(Insn::Fence),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The paper's §3.4 validation: decode(encode(i)) == i for every
    /// instruction, so the decoder never needs to be trusted.
    #[test]
    fn encode_decode_roundtrip(insn in arb_insn()) {
        let w = encode(insn);
        let back = decode_validated(w).expect("decode of encoded insn");
        prop_assert_eq!(back, insn);
    }
}

// ---------------------------------------------------------------------
// Concrete execution (riscv-tests style)
// ---------------------------------------------------------------------

/// Runs a code fragment with registers preloaded; the fragment must end in
/// mret. Returns the final machine.
fn run_concrete(build: impl FnOnce(&mut Asm), regs: &[(u8, u64)]) -> Machine {
    let mut ctx = SymCtx::new();
    let mut asm = Asm::new();
    build(&mut asm);
    asm.i(Insn::Mret);
    let words = asm.assemble(0x8000_0000);
    let interp = Interp::from_words(0x8000_0000, &words, 4096).unwrap();
    let mem = Mem::new(MemCfg::default());
    let mut m = Machine::reset_at(0x8000_0000, mem);
    for &(r, v) in regs {
        m.set_reg(r, BV::lit(64, v as u128));
    }
    let o = interp.run(&mut ctx, &mut m);
    assert!(o.ok(), "{o:?}");
    // All obligations must hold for a clean concrete run.
    for ob in ctx.take_obligations() {
        assert!(verify(&[], ob.condition).is_proved(), "{}", ob.label);
    }
    m
}

fn reg_val(m: &Machine, r: u8) -> u64 {
    m.reg(r).as_const().expect("concrete register") as u64
}

#[test]
fn alu_semantics_match_rust() {
    reset_ctx();
    let a: u64 = 0xdead_beef_1234_5678;
    let b: u64 = 0x0f0f_0f0f_8765_4321;
    let cases: Vec<(RAluOp, u64)> = vec![
        (RAluOp::Add, a.wrapping_add(b)),
        (RAluOp::Sub, a.wrapping_sub(b)),
        (RAluOp::Sll, a << (b & 63)),
        (RAluOp::Slt, ((a as i64) < (b as i64)) as u64),
        (RAluOp::Sltu, (a < b) as u64),
        (RAluOp::Xor, a ^ b),
        (RAluOp::Srl, a >> (b & 63)),
        (RAluOp::Sra, ((a as i64) >> (b & 63)) as u64),
        (RAluOp::Or, a | b),
        (RAluOp::And, a & b),
        (RAluOp::Mul, a.wrapping_mul(b)),
        (
            RAluOp::Mulhu,
            ((a as u128 * b as u128) >> 64) as u64,
        ),
        (
            RAluOp::Mulh,
            (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
        ),
        (RAluOp::Divu, a / b),
        (RAluOp::Remu, a % b),
        (RAluOp::Div, ((a as i64).wrapping_div(b as i64)) as u64),
        (RAluOp::Rem, ((a as i64).wrapping_rem(b as i64)) as u64),
    ];
    for (op, expect) in cases {
        reset_ctx();
        let m = run_concrete(
            |asm| {
                asm.i(Insn::Op { op, rd: A0, rs1: A1, rs2: A2 });
            },
            &[(A1, a), (A2, b)],
        );
        assert_eq!(reg_val(&m, A0), expect, "{op:?}");
    }
}

#[test]
fn division_edge_cases() {
    // RISC-V: x/0 = -1, x%0 = x, MIN/-1 = MIN, MIN%-1 = 0.
    let min = i64::MIN as u64;
    for (op, a, b, expect) in [
        (RAluOp::Div, 5u64, 0u64, u64::MAX),
        (RAluOp::Divu, 5, 0, u64::MAX),
        (RAluOp::Rem, 5, 0, 5),
        (RAluOp::Remu, 5, 0, 5),
        (RAluOp::Div, min, u64::MAX, min),
        (RAluOp::Rem, min, u64::MAX, 0),
    ] {
        reset_ctx();
        let m = run_concrete(
            |asm| {
                asm.i(Insn::Op { op, rd: A0, rs1: A1, rs2: A2 });
            },
            &[(A1, a), (A2, b)],
        );
        assert_eq!(reg_val(&m, A0), expect, "{op:?} {a}/{b}");
    }
}

#[test]
fn word_ops_sign_extend() {
    reset_ctx();
    // addw of values overflowing 32 bits sign-extends the 32-bit result.
    let m = run_concrete(
        |asm| {
            asm.i(Insn::OpW { op: RAluWOp::Addw, rd: A0, rs1: A1, rs2: A2 });
        },
        &[(A1, 0x7fff_ffff), (A2, 1)],
    );
    assert_eq!(reg_val(&m, A0), 0xffff_ffff_8000_0000);
    reset_ctx();
    let m = run_concrete(
        |asm| {
            asm.i(Insn::OpImmW { op: IAluWOp::Sraiw, rd: A0, rs1: A1, imm: 4 });
        },
        &[(A1, 0x8000_0000)],
    );
    assert_eq!(reg_val(&m, A0), 0xffff_ffff_f800_0000);
}

#[test]
fn li_pseudo_loads_constants() {
    for v in [0i64, 1, -1, 2047, -2048, 4096, 0x12345, -0x7654321, 0x7fff_ffff, 0xdead_beef] {
        reset_ctx();
        let m = run_concrete(
            |asm| {
                asm.li(A0, v);
            },
            &[],
        );
        assert_eq!(reg_val(&m, A0), v as u64, "li {v:#x}");
    }
}

#[test]
fn sum_loop() {
    reset_ctx();
    let n = 10u64;
    let m = run_concrete(
        |asm| {
            asm.li(A0, 0);
            asm.li(T0, 1);
            asm.li(T1, n as i64);
            asm.label("loop");
            asm.add(A0, A0, T0);
            asm.addi(T0, T0, 1);
            asm.branch(BrOp::Bge, T1, T0, "loop");
        },
        &[],
    );
    assert_eq!(reg_val(&m, A0), (1..=n).sum::<u64>());
}

#[test]
fn memory_load_store_via_machine() {
    reset_ctx();
    let mut ctx = SymCtx::new();
    let mut asm = Asm::new();
    asm.define_symbol("counter", 0x1000);
    asm.la(T0, "counter");
    asm.ld(A0, 0, T0);
    asm.addi(A0, A0, 1);
    asm.sd(A0, 0, T0);
    asm.i(Insn::Mret);
    let words = asm.assemble(0x8000_0000);
    let interp = Interp::from_words(0x8000_0000, &words, 64).unwrap();
    let mut mem = Mem::new(MemCfg::default());
    mem.add_region(
        "counter",
        0x1000,
        Layout::Struct(vec![("value".into(), Layout::Cell(8))]).instantiate_fresh("counter"),
    );
    let init = mem.read_path("counter", &[serval_core::PathElem::Field("value")]);
    let mut m = Machine::reset_at(0x8000_0000, mem);
    let o = interp.run(&mut ctx, &mut m);
    assert!(o.ok());
    // Symbolic increment: final = initial + 1 for ALL initial values.
    let fin = m
        .mem
        .read_path("counter", &[serval_core::PathElem::Field("value")]);
    assert!(verify(&[], fin.eq_(init + BV::lit(64, 1))).is_proved());
}

#[test]
fn function_call_and_return() {
    reset_ctx();
    let m = run_concrete(
        |asm| {
            asm.li(A0, 5);
            asm.call("double");
            asm.call("double");
            asm.j("done");
            asm.label("double");
            asm.add(A0, A0, A0);
            asm.ret();
            asm.label("done");
        },
        &[],
    );
    assert_eq!(reg_val(&m, A0), 20);
}

#[test]
fn csr_read_write_set_clear() {
    reset_ctx();
    let m = run_concrete(
        |asm| {
            asm.li(T0, 0xff);
            asm.i(Insn::Csr { op: CsrOp::Rw, rd: ZERO, src: CsrSrc::Reg(T0), csr: csr::MSCRATCH });
            // Set bit 8 via immediate... zimm max 31, so set bit 4.
            asm.i(Insn::Csr { op: CsrOp::Rs, rd: A0, src: CsrSrc::Imm(0x10), csr: csr::MSCRATCH });
            // Clear low 4 bits.
            asm.i(Insn::Csr { op: CsrOp::Rc, rd: A1, src: CsrSrc::Imm(0xf), csr: csr::MSCRATCH });
            // Read back.
            asm.i(Insn::Csr { op: CsrOp::Rs, rd: A2, src: CsrSrc::Reg(ZERO), csr: csr::MSCRATCH });
        },
        &[],
    );
    assert_eq!(reg_val(&m, A0), 0xff, "old value after rw");
    assert_eq!(reg_val(&m, A1), 0xff, "old value after rs (bit4 already set)");
    assert_eq!(reg_val(&m, A2), 0xf0, "cleared low bits remain");
}

#[test]
fn mret_jumps_to_mepc() {
    reset_ctx();
    let mut ctx = SymCtx::new();
    let mut asm = Asm::new();
    asm.i(Insn::Mret);
    let words = asm.assemble(0x8000_0000);
    let interp = Interp::from_words(0x8000_0000, &words, 8).unwrap();
    let mut m = Machine::reset_at(0x8000_0000, Mem::new(MemCfg::default()));
    m.csrs.mepc = BV::lit(64, 0x4242);
    let o = interp.run(&mut ctx, &mut m);
    assert!(o.ok());
    assert_eq!(m.pc.as_const(), Some(0x4242));
}

// ---------------------------------------------------------------------
// Symbolic execution
// ---------------------------------------------------------------------

/// A handler with symbolic input: abs(a0), verified against a spec.
#[test]
fn symbolic_abs_handler() {
    reset_ctx();
    let mut ctx = SymCtx::new();
    let mut asm = Asm::new();
    // if (a0 < 0) a0 = -a0;
    asm.branch(BrOp::Bge, A0, ZERO, "done");
    asm.i(Insn::Op { op: RAluOp::Sub, rd: A0, rs1: ZERO, rs2: A0 });
    asm.label("done");
    asm.i(Insn::Mret);
    let words = asm.assemble(0x8000_0000);
    let interp = Interp::from_words(0x8000_0000, &words, 16).unwrap();
    let mut m = Machine::fresh_at(0x8000_0000, Mem::new(MemCfg::default()), "m");
    let a0 = m.reg(A0);
    let o = interp.run(&mut ctx, &mut m);
    assert!(o.ok(), "{o:?}");
    let spec = a0
        .slt(BV::lit(64, 0))
        .select(BV::lit(64, 0) - a0, a0);
    assert!(verify(&[], m.reg(A0).eq_(spec)).is_proved());
    assert_eq!(
        ctx.profiler.total_splits(),
        1,
        "one symbolic branch, one split"
    );
}

/// Merged-pc ablation: the baseline and split-pc agree semantically.
#[test]
fn merged_pc_agrees_with_split_pc() {
    reset_ctx();
    let mut ctx = SymCtx::new();
    let mut asm = Asm::new();
    asm.branch(BrOp::Beq, A0, ZERO, "zero");
    asm.li(A1, 7);
    asm.i(Insn::Mret);
    asm.label("zero");
    asm.li(A1, 9);
    asm.i(Insn::Mret);
    let words = asm.assemble(0x8000_0000);
    let mut interp = Interp::from_words(0x8000_0000, &words, 8).unwrap();
    let mut m1 = Machine::fresh_at(0x8000_0000, Mem::new(MemCfg::default()), "m");
    let mut m2 = m1.clone();
    interp.run(&mut ctx, &mut m1);
    interp.opt = serval_core::OptCfg::none();
    interp.run(&mut ctx, &mut m2);
    assert!(verify(&[], m1.reg(A1).eq_(m2.reg(A1))).is_proved());
}

/// An opaque pc (jump through an arbitrary register) is reported, matching
/// the paper's "unconstrained program counter indicates a security bug".
#[test]
fn opaque_pc_detected() {
    reset_ctx();
    let mut ctx = SymCtx::new();
    let mut asm = Asm::new();
    asm.i(Insn::Jalr { rd: ZERO, rs1: A0, off: 0 }); // jump to untrusted a0!
    let words = asm.assemble(0x8000_0000);
    let interp = Interp::from_words(0x8000_0000, &words, 8).unwrap();
    let mut m = Machine::fresh_at(0x8000_0000, Mem::new(MemCfg::default()), "m");
    let o = interp.run(&mut ctx, &mut m);
    assert!(o.opaque_pc, "unconstrained jump must be flagged");
}
