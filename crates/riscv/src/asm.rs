//! A small RV64 assembler: labels, branches, and pseudo-instructions.
//!
//! Used by the monitors' build descriptions (playing the role of gcc +
//! binutils, which are untrusted in the paper's methodology — the verifier
//! consumes only the machine words this assembler emits, and validates its
//! own decoding against the encoder).

use crate::insn::{BrOp, IAluOp, Insn, LdOp, RAluOp, StOp};
use crate::reg;
use std::collections::HashMap;

/// One assembly item: a concrete instruction or a label-relative fixup.
#[derive(Clone, Debug)]
enum Item {
    Insn(Insn),
    /// Branch to a label; patched at assembly time.
    Branch { op: BrOp, rs1: u8, rs2: u8, label: String },
    /// Jump-and-link to a label.
    Jal { rd: u8, label: String },
    /// Load the absolute address of a label (expands to auipc+addi).
    La { rd: u8, label: String },
}

/// The assembler: emits items, resolves labels, produces machine words.
#[derive(Default)]
pub struct Asm {
    items: Vec<Item>,
    labels: HashMap<String, usize>,
    /// Extra symbols (data addresses) usable with `la`.
    symbols: HashMap<String, u64>,
}

impl Asm {
    /// Creates an empty assembler.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Defines a data symbol for `la`.
    pub fn define_symbol(&mut self, name: &str, addr: u64) {
        self.symbols.insert(name.to_string(), addr);
    }

    /// Places a label at the current position.
    pub fn label(&mut self, name: &str) {
        let prev = self.labels.insert(name.to_string(), self.items.len());
        assert!(prev.is_none(), "duplicate label {name}");
    }

    /// Emits a raw instruction.
    pub fn i(&mut self, insn: Insn) -> &mut Self {
        self.items.push(Item::Insn(insn));
        self
    }

    // ---- common instructions ----

    /// `addi rd, rs1, imm` (also `mv` when imm = 0).
    pub fn addi(&mut self, rd: u8, rs1: u8, imm: i32) -> &mut Self {
        assert!((-2048..2048).contains(&imm), "addi immediate {imm}");
        self.i(Insn::OpImm {
            op: IAluOp::Addi,
            rd,
            rs1,
            imm,
        })
    }

    /// `mv rd, rs`.
    pub fn mv(&mut self, rd: u8, rs: u8) -> &mut Self {
        self.addi(rd, rs, 0)
    }

    /// Loads a constant into `rd` (expands to lui/addiw sequences as
    /// needed; supports any 32-bit signed constant and unsigned 32-bit
    /// values such as physical addresses).
    pub fn li(&mut self, rd: u8, value: i64) -> &mut Self {
        assert!(
            value >= i32::MIN as i64 && value <= u32::MAX as i64,
            "li constant {value:#x} out of supported range"
        );
        for insn in li_sequence(rd, value) {
            self.i(insn);
        }
        self
    }

    /// `ld rd, off(rs1)`.
    pub fn ld(&mut self, rd: u8, off: i32, rs1: u8) -> &mut Self {
        self.i(Insn::Load {
            op: LdOp::Ld,
            rd,
            rs1,
            off,
        })
    }

    /// `sd rs2, off(rs1)`.
    pub fn sd(&mut self, rs2: u8, off: i32, rs1: u8) -> &mut Self {
        self.i(Insn::Store {
            op: StOp::Sd,
            rs1,
            rs2,
            off,
        })
    }

    /// `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.i(Insn::Op {
            op: RAluOp::Add,
            rd,
            rs1,
            rs2,
        })
    }

    /// Branch to `label`.
    pub fn branch(&mut self, op: BrOp, rs1: u8, rs2: u8, label: &str) -> &mut Self {
        self.items.push(Item::Branch {
            op,
            rs1,
            rs2,
            label: label.to_string(),
        });
        self
    }

    /// `beqz rs, label`.
    pub fn beqz(&mut self, rs: u8, label: &str) -> &mut Self {
        self.branch(BrOp::Beq, rs, reg::ZERO, label)
    }

    /// `bnez rs, label`.
    pub fn bnez(&mut self, rs: u8, label: &str) -> &mut Self {
        self.branch(BrOp::Bne, rs, reg::ZERO, label)
    }

    /// Unconditional jump to `label`.
    pub fn j(&mut self, label: &str) -> &mut Self {
        self.items.push(Item::Jal {
            rd: reg::ZERO,
            label: label.to_string(),
        });
        self
    }

    /// Call `label` (jal ra, label).
    pub fn call(&mut self, label: &str) -> &mut Self {
        self.items.push(Item::Jal {
            rd: reg::RA,
            label: label.to_string(),
        });
        self
    }

    /// Return (`jalr x0, 0(ra)`).
    pub fn ret(&mut self) -> &mut Self {
        self.i(Insn::Jalr {
            rd: reg::ZERO,
            rs1: reg::RA,
            off: 0,
        })
    }

    /// Loads the address of a code label or data symbol into `rd`.
    pub fn la(&mut self, rd: u8, label: &str) -> &mut Self {
        self.items.push(Item::La {
            rd,
            label: label.to_string(),
        });
        self
    }

    /// Number of instruction slots an item occupies (la is padded to a
    /// fixed expansion length).
    fn size_of(item: &Item) -> usize {
        match item {
            Item::La { .. } => LA_SLOTS,
            _ => 1,
        }
    }

    /// The address label `name` will have when assembled at `base`.
    pub fn address_of(&self, name: &str, base: u64) -> u64 {
        let mut pos = 0usize;
        for (i, item) in self.items.iter().enumerate() {
            if self.labels.get(name) == Some(&i) {
                return base + pos as u64;
            }
            pos += 4 * Self::size_of(item);
        }
        if self.labels.get(name) == Some(&self.items.len()) {
            return base + pos as u64;
        }
        panic!("undefined label {name}");
    }

    /// Resolves labels and produces machine words for code placed at
    /// `base`.
    pub fn assemble(&self, base: u64) -> Vec<u32> {
        // First pass: byte offset of each item.
        let mut offsets = Vec::with_capacity(self.items.len());
        let mut pos = 0usize;
        for item in &self.items {
            offsets.push(pos);
            pos += 4 * Self::size_of(item);
        }
        let label_off = |name: &str| -> i64 {
            let idx = *self
                .labels
                .get(name)
                .unwrap_or_else(|| panic!("undefined label {name}"));
            if idx == self.items.len() {
                pos as i64
            } else {
                offsets[idx] as i64
            }
        };
        let mut words = Vec::with_capacity(pos / 4);
        for (i, item) in self.items.iter().enumerate() {
            let here = offsets[i] as i64;
            match item {
                Item::Insn(insn) => words.push(crate::insn::encode(*insn)),
                Item::Branch { op, rs1, rs2, label } => {
                    let off = label_off(label) - here;
                    assert!((-4096..4096).contains(&off), "branch to {label} too far");
                    words.push(crate::insn::encode(Insn::Branch {
                        op: *op,
                        rs1: *rs1,
                        rs2: *rs2,
                        off: off as i32,
                    }));
                }
                Item::Jal { rd, label } => {
                    let off = label_off(label) - here;
                    words.push(crate::insn::encode(Insn::Jal {
                        rd: *rd,
                        off: off as i32,
                    }));
                }
                Item::La { rd, label } => {
                    // Absolute address: from a code label (base-relative)
                    // or a data symbol. Addresses must fit in unsigned
                    // 32 bits (the monitors' physical layouts do).
                    let addr = match self.symbols.get(label.as_str()) {
                        Some(&a) => a,
                        None => base + label_off(label) as u64,
                    };
                    assert!(addr <= u32::MAX as u64, "la address {addr:#x} too large");
                    let seq = li_sequence(*rd, addr as i64);
                    assert!(seq.len() <= LA_SLOTS, "la expansion too long");
                    for k in 0..LA_SLOTS {
                        // Pad with nops to keep label offsets fixed.
                        words.push(crate::insn::encode(*seq.get(k).unwrap_or(&NOP)));
                    }
                }
            }
        }
        words
    }
}


/// Fixed slot count for the `la` pseudo-instruction expansion.
const LA_SLOTS: usize = 4;

/// `nop` (addi x0, x0, 0).
const NOP: Insn = Insn::OpImm {
    op: IAluOp::Addi,
    rd: 0,
    rs1: 0,
    imm: 0,
};

/// Expands a constant load into real instructions: `addi` for small
/// values; `lui` + `addiw` for 32-bit values (the `addiw` wraps at 32 bits
/// like the real `li` expansion); a final shift pair re-zero-extends
/// unsigned 32-bit values such as physical addresses.
fn li_sequence(rd: u8, value: i64) -> Vec<Insn> {
    use crate::insn::IAluWOp;
    if (-2048..2048).contains(&value) {
        return vec![Insn::OpImm {
            op: IAluOp::Addi,
            rd,
            rs1: 0,
            imm: value as i32,
        }];
    }
    let v = value;
    let low = (v << 52 >> 52) as i32; // sign-extended low 12 bits
    let high = ((v.wrapping_sub(low as i64)) >> 12) as i32;
    let mut out = vec![Insn::Lui {
        rd,
        imm20: high & 0xfffff,
    }];
    if low != 0 {
        out.push(Insn::OpImmW {
            op: IAluWOp::Addiw,
            rd,
            rs1: rd,
            imm: low,
        });
    }
    // lui/addiw produce sext32(v); re-zero-extend when the caller wanted
    // an unsigned 32-bit value with bit 31 set.
    if v > i32::MAX as i64 {
        out.push(Insn::OpImm {
            op: IAluOp::Slli,
            rd,
            rs1: rd,
            imm: 32,
        });
        out.push(Insn::OpImm {
            op: IAluOp::Srli,
            rd,
            rs1: rd,
            imm: 32,
        });
    }
    out
}
