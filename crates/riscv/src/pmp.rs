//! A specification of RISC-V physical memory protection (paper §6.1).
//!
//! PMP lets M-mode define up to 8 regions (on the U54) with per-region
//! read/write/execute permissions, checked by hardware for S/U-mode
//! accesses. The monitors program PMP to isolate processes/enclaves; their
//! noninterference proofs use this module as the *model* of what untrusted
//! S/U-mode code can observe or modify.
//!
//! Only the TOR (top-of-range) address mode is modelled, which is what the
//! ported monitors use; the region `i` matches addresses in
//! `[pmpaddr[i-1] << 2, pmpaddr[i] << 2)`.

use crate::machine::Csrs;
use serval_smt::{SBool, BV};

/// Access kinds for PMP checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// Read.
    R,
    /// Write.
    W,
    /// Execute.
    X,
}

const A_TOR: u128 = 1;

/// Whether an S/U-mode access to `addr` is allowed by the PMP
/// configuration in `csrs`. Returns a symbolic boolean; with no matching
/// region the access is denied (the privileged-spec default for S/U).
pub fn pmp_allows(csrs: &Csrs, addr: BV, access: Access) -> SBool {
    let mut allowed = SBool::lit(false);
    let mut matched = SBool::lit(false);
    let mut prev_top = BV::lit(64, 0);
    for i in 0..8 {
        let cfg = csrs.pmpcfg0.lshr(BV::lit(64, (8 * i) as u128)) & BV::lit(64, 0xff);
        let a_field = cfg.lshr(BV::lit(64, 3)) & BV::lit(64, 3);
        let is_tor = a_field.eq_(BV::lit(64, A_TOR));
        let top = csrs.pmpaddr[i].shl(BV::lit(64, 2));
        let in_range = addr.uge(prev_top) & addr.ult(top);
        let bit = match access {
            Access::R => cfg & BV::lit(64, 1),
            Access::W => cfg.lshr(BV::lit(64, 1)) & BV::lit(64, 1),
            Access::X => cfg.lshr(BV::lit(64, 2)) & BV::lit(64, 1),
        };
        let perm = bit.ne_(BV::lit(64, 0));
        // Lowest-numbered matching region takes priority.
        let this_match = is_tor & in_range & !matched;
        allowed = allowed | (this_match & perm);
        matched = matched | this_match;
        prev_top = top;
    }
    allowed
}

/// Convenience: builds the pmpcfg0 byte for a TOR region with the given
/// permissions.
pub fn tor_cfg(r: bool, w: bool, x: bool) -> u64 {
    (A_TOR as u64) << 3 | (r as u64) | (w as u64) << 1 | (x as u64) << 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use serval_smt::{reset_ctx, verify};

    #[test]
    fn tor_region_allows_inside_denies_outside() {
        reset_ctx();
        let mut csrs = Csrs::reset();
        // Region 0: [0, 0x1000) no access; region 1: [0x1000, 0x2000) rw.
        csrs.pmpaddr[0] = BV::lit(64, 0x1000 >> 2);
        csrs.pmpaddr[1] = BV::lit(64, 0x2000 >> 2);
        let cfg0 = tor_cfg(false, false, false);
        let cfg1 = tor_cfg(true, true, false);
        csrs.pmpcfg0 = BV::lit(64, (cfg0 as u128) | (cfg1 as u128) << 8);

        let addr = BV::fresh(64, "addr");
        let inside = addr.uge(BV::lit(64, 0x1000)) & addr.ult(BV::lit(64, 0x2000));
        assert!(verify(&[inside], pmp_allows(&csrs, addr, Access::R)).is_proved());
        assert!(verify(&[inside], !pmp_allows(&csrs, addr, Access::X)).is_proved());
        let below = addr.ult(BV::lit(64, 0x1000));
        assert!(verify(&[below], !pmp_allows(&csrs, addr, Access::R)).is_proved());
        let above = addr.uge(BV::lit(64, 0x2000));
        assert!(verify(&[above], !pmp_allows(&csrs, addr, Access::W)).is_proved());
    }

    #[test]
    fn lowest_region_priority() {
        reset_ctx();
        let mut csrs = Csrs::reset();
        // Region 0 covers [0, 0x1000) read-only; region 1 covers
        // [0, 0x2000)... i.e. [0x1000, 0x2000) after TOR chaining, rw.
        csrs.pmpaddr[0] = BV::lit(64, 0x1000 >> 2);
        csrs.pmpaddr[1] = BV::lit(64, 0x2000 >> 2);
        let cfg0 = tor_cfg(true, false, false);
        let cfg1 = tor_cfg(true, true, false);
        csrs.pmpcfg0 = BV::lit(64, (cfg0 as u128) | (cfg1 as u128) << 8);
        let addr = BV::lit(64, 0x800);
        // Region 0 matches first: read ok, write denied.
        assert!(verify(&[], pmp_allows(&csrs, addr, Access::R)).is_proved());
        assert!(verify(&[], !pmp_allows(&csrs, addr, Access::W)).is_proved());
    }

    #[test]
    fn no_match_denies() {
        reset_ctx();
        let csrs = Csrs::reset(); // all regions OFF
        let addr = BV::fresh(64, "addr");
        assert!(verify(&[], !pmp_allows(&csrs, addr, Access::R)).is_proved());
    }
}
