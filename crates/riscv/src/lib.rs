//! The RISC-V verifier (paper §5): an RV64I + M + Zicsr interpreter lifted
//! to a verifier by symbolic evaluation.
//!
//! Components:
//!
//! - [`insn`]: the instruction set, with both a decoder *and* an encoder.
//!   Following the paper's validation approach (§3.4), anything that
//!   decodes machine words re-encodes each instruction and compares bytes,
//!   removing the assembler/disassembler from the trusted base.
//! - [`asm`]: a small assembler (labels, branches, pseudo-instructions)
//!   used by the monitors' build descriptions and by tests.
//! - [`machine`]: the machine state — registers, CSRs (Zicsr + the M-mode
//!   trap and PMP registers used by the security monitors), and typed
//!   memory from `serval-core`.
//! - [`interp`]: the fetch-decode-execute loop under symbolic evaluation,
//!   with `split-pc` applied before every fetch (paper §4) and trap-return
//!   (`mret`) as the exit point of a handler run (paper §3.4, Fig. 6).
//! - [`pmp`]: a specification of RISC-V physical memory protection used by
//!   the monitors' noninterference proofs (paper §6.1).
//! - [`vm`]: the Sv39 three-level page-walk specification modelling S/U
//!   memory accesses (paper §6.1), composing with PMP.

pub mod asm;
pub mod insn;
pub mod interp;
pub mod machine;
pub mod pmp;
pub mod vm;

pub use asm::Asm;
pub use insn::{decode, encode, Insn};
pub use interp::{Interp, RunOutcome};
pub use machine::{Csrs, Machine, Mode};

/// ABI register numbers.
pub mod reg {
    /// Hard-wired zero.
    pub const ZERO: u8 = 0;
    /// Return address.
    pub const RA: u8 = 1;
    /// Stack pointer.
    pub const SP: u8 = 2;
    /// Global pointer.
    pub const GP: u8 = 3;
    /// Thread pointer.
    pub const TP: u8 = 4;
    /// Temporaries.
    pub const T0: u8 = 5;
    pub const T1: u8 = 6;
    pub const T2: u8 = 7;
    /// Saved register / frame pointer.
    pub const S0: u8 = 8;
    pub const S1: u8 = 9;
    /// Argument registers.
    pub const A0: u8 = 10;
    pub const A1: u8 = 11;
    pub const A2: u8 = 12;
    pub const A3: u8 = 13;
    pub const A4: u8 = 14;
    pub const A5: u8 = 15;
    pub const A6: u8 = 16;
    pub const A7: u8 = 17;
    /// More saved registers.
    pub const S2: u8 = 18;
    pub const S3: u8 = 19;
    pub const S4: u8 = 20;
    pub const S5: u8 = 21;
    /// More temporaries.
    pub const T3: u8 = 28;
    pub const T4: u8 = 29;
    pub const T5: u8 = 30;
    pub const T6: u8 = 31;
}

#[cfg(test)]
mod tests;
