//! Remote probe: the verification service's library API in one file.
//!
//! Starts a sharded `servald` core on an ephemeral loopback port inside
//! this process, connects a [`serval_net::Client`] to it, discharges two
//! hand-built obligations over the wire, and prints the verdicts — the
//! certificate fingerprint backing the proved one, the countermodel
//! refuting the other (mapped back onto this process's terms). Then it
//! installs a [`serval_net::RemoteEngine`] as the process-wide
//! discharger, so an unmodified `serval_core::report::prove` call goes
//! over the wire too.
//!
//! Run with: `cargo run --example remote_probe`

use serval_engine::Query;
use serval_net::service::NetCfg;
use serval_net::{Client, RemoteEngine, Server};
use serval_smt::solver::{SolverConfig, VerifyResult};
use serval_smt::{reset_ctx, BV};
use std::sync::Arc;

fn main() {
    println!("== Serval remote probe: discharge over the wire ==\n");

    // A loopback server: 2 shards, default hot tier, ephemeral port.
    let mut cfg = NetCfg::default();
    cfg.shards = 2;
    cfg.engine.disk_cache = None;
    let server = Server::bind("127.0.0.1:0", cfg).expect("loopback bind");
    let addr = server.local_addr().to_string();
    println!(
        "servald on {addr}: {} shards x {} workers",
        server.core().shards().len(),
        server.core().shard_jobs()
    );

    // Two obligations, serialized to alpha-invariant wire cores and
    // streamed as one batch.
    let mut client = Client::connect(&addr).expect("connect");
    reset_ctx();
    let x = BV::fresh(32, "x");
    let m = BV::fresh(32, "m");
    let queries = vec![
        Query {
            label: "masked-le".to_string(),
            assumptions: vec![],
            goal: (x & m).ule(x),
            cfg: SolverConfig::default(),
        },
        Query {
            label: "bounded".to_string(),
            assumptions: vec![x.uge(BV::lit(32, 3))],
            goal: x.ult(BV::lit(32, 10)),
            cfg: SolverConfig::default(),
        },
    ];
    println!("\n-- batch over the wire --");
    for out in client.submit_batch(queries).expect("batch") {
        match &out.result {
            VerifyResult::Proved => {
                let cert = out.cert.map_or("uncertified".to_string(), |c| format!("{c:#018x}"));
                println!("  {:<10} proved   certificate {cert}", out.label);
            }
            VerifyResult::Counterexample(model) => {
                println!("  {:<10} refuted  countermodel x = {}", out.label, model.eval_bv(x.0));
            }
            other => println!("  {:<10} {other:?}", out.label),
        }
    }
    if let Some(stats) = &client.last_stats {
        for row in &stats.shards {
            println!("  shard {}: queued {}, solved {}", row.shard, row.queued, row.solved);
        }
    }

    // The same wire, reached through the engine seam: install a
    // RemoteEngine and existing proof entry points go remote unchanged.
    println!("\n-- via the process-wide discharger --");
    let remote = RemoteEngine::connect(&addr).expect("connect");
    serval_engine::install_discharger(Arc::new(remote));
    reset_ctx();
    let a = BV::fresh(16, "a");
    let b = BV::fresh(16, "b");
    let ctx = serval_sym::SymCtx::new();
    let thm = serval_core::report::discharge(
        &ctx,
        SolverConfig::default(),
        "xor-roundtrip",
        &[],
        ((a ^ b) ^ b).eq_(a),
    );
    println!("  xor-roundtrip: {:?} (discharged remotely)", thm.verdict);
    serval_engine::clear_discharger();

    server.shutdown();
    println!("\nremote probe OK");
}
