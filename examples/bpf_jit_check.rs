//! The BPF JIT checker (paper §7): verify the fixed Linux-style JITs,
//! then reintroduce the historical bugs and watch the checker find each
//! one with a concrete counterexample.
//!
//! Run with: `cargo run --release --example bpf_jit_check`

use serval_jit::{check_rv64, sweep_rv64, sweep_x86, Rv64Jit, RvBug, X86Bug, X86Jit};
use serval_bpf::{AluOp, Insn, Src};
use serval_smt::solver::SolverConfig;

fn main() {
    let cfg = SolverConfig::default();

    println!("== fixed JITs: full ALU sweep ==");
    let rows = sweep_rv64(&Rv64Jit::fixed(), cfg);
    let ok = rows.iter().filter(|r| r.ok).count();
    println!("  rv64:   {ok}/{} instruction forms verified", rows.len());
    assert_eq!(ok, rows.len());
    let rows = sweep_x86(&X86Jit::fixed(), cfg);
    let ok = rows.iter().filter(|r| r.ok).count();
    println!("  x86-32: {ok}/{} instruction forms verified", rows.len());
    assert_eq!(ok, rows.len());

    println!("\n== seeded historical bugs (9 rv64 + 6 x86-32, paper §7) ==");
    for bug in RvBug::ALL {
        let mut jit = Rv64Jit::fixed();
        jit.bugs.insert(bug);
        let rows = sweep_rv64(&jit, cfg);
        let hit = rows.iter().find(|r| !r.ok).expect("bug must be found");
        println!(
            "  rv64   {:<12} found at {:<55} {}",
            format!("{bug:?}"),
            hit.insn,
            hit.cex.as_deref().unwrap_or("")
        );
    }
    for bug in X86Bug::ALL {
        let mut jit = X86Jit::fixed();
        jit.bugs.insert(bug);
        let rows = sweep_x86(&jit, cfg);
        let hit = rows.iter().find(|r| !r.ok).expect("bug must be found");
        println!(
            "  x86-32 {:<12} found at {:<55} {}",
            format!("{bug:?}"),
            hit.insn,
            hit.cex.as_deref().unwrap_or("")
        );
    }

    println!("\n== a single check in detail ==");
    let insn = Insn::Alu32 { op: AluOp::Rsh, src: Src::X, dst: 1, srcr: 2, imm: 0 };
    let mut buggy = Rv64Jit::fixed();
    buggy.bugs.insert(RvBug::Shift32Rsh);
    println!("  BPF instruction: {insn:?}");
    println!("  buggy emission (64-bit srl instead of srlw):");
    for i in buggy.emit(insn).unwrap() {
        println!("    {i:?}");
    }
    let row = check_rv64(&buggy, insn, cfg).unwrap();
    println!("  verdict: ok={} {}", row.ok, row.cex.as_deref().unwrap_or(""));
    println!("  fixed emission:");
    for i in Rv64Jit::fixed().emit(insn).unwrap() {
        println!("    {i:?}");
    }
    let row = check_rv64(&Rv64Jit::fixed(), insn, cfg).unwrap();
    println!("  verdict: ok={}", row.ok);
}
