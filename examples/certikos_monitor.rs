//! CertiKOS^s end-to-end (paper §6.2): run the monitor binary concretely,
//! then verify it — refinement of every monitor call against the
//! functional specification, plus the noninterference properties,
//! including the legacy spawn's covert channel being caught.
//!
//! Run with: `cargo run --release --example certikos_monitor`

use serval_core::{OptCfg, PathElem};
use serval_ir::OptLevel;
use serval_monitors::certikos::{self, proofs, sys};
use serval_riscv::{reg, Machine};
use serval_smt::solver::SolverConfig;
use serval_smt::{reset_ctx, BV};
use serval_sym::SymCtx;

fn main() {
    let cfg = SolverConfig::default();

    // --- 1. The monitor as a concrete machine: spawn two children, yield.
    println!("== CertiKOS^s: concrete run ==");
    reset_ctx();
    let mut mem = certikos::fresh_mem();
    mem.write_path("cur_pid", &[PathElem::Field("cur")], BV::lit(64, 0));
    for i in 0..certikos::NPROC {
        for f in ["state", "quota", "base", "nr_children", "ctx_s0", "ctx_s1", "ctx_sp", "ctx_mepc"] {
            mem.write_path("procs", &[PathElem::Index(i), PathElem::Field(f)], BV::lit(64, 0));
        }
    }
    mem.write_path("procs", &[PathElem::Index(0), PathElem::Field("state")], BV::lit(64, 1));
    mem.write_path("procs", &[PathElem::Index(0), PathElem::Field("quota")], BV::lit(64, 8));
    let mut m = Machine::reset_at(certikos::CODE_BASE, mem);
    m.csrs.mepc = BV::lit(64, 0x1_0000);
    let interp = certikos::build(OptLevel::O1, OptCfg::default());
    let call = |m: &mut Machine, op: u64, a0: u64, a1: u64| -> u64 {
        let mut ctx = SymCtx::new();
        m.pc = BV::lit(64, certikos::CODE_BASE as u128);
        m.set_reg(reg::A7, BV::lit(64, op as u128));
        m.set_reg(reg::A0, BV::lit(64, a0 as u128));
        m.set_reg(reg::A1, BV::lit(64, a1 as u128));
        assert!(interp.run(&mut ctx, m).ok());
        m.reg(reg::A0).as_const().unwrap() as u64
    };
    println!("  get_quota()          = {}", call(&mut m, sys::GET_QUOTA, 0, 0));
    println!("  spawn(child=1, q=3)  = {}", call(&mut m, sys::SPAWN, 1, 3));
    println!("  spawn(child=2, q=2)  = {}", call(&mut m, sys::SPAWN, 2, 2));
    println!("  get_quota()          = {}", call(&mut m, sys::GET_QUOTA, 0, 0));
    println!("  yield()              = {}", call(&mut m, sys::YIELD, 0, 0));
    println!(
        "  now running pid {}, PMP = [{:#x}, {:#x})",
        m.mem.read_path("cur_pid", &[PathElem::Field("cur")]).as_const().unwrap(),
        (m.csrs.pmpaddr[0].as_const().unwrap() as u64) << 2,
        (m.csrs.pmpaddr[1].as_const().unwrap() as u64) << 2,
    );

    // --- 2. Refinement of the binary, per monitor call.
    println!("\n== refinement proof (binary, -O1) ==");
    let report = proofs::prove_refinement(OptLevel::O1, OptCfg::default(), cfg);
    print!("{}", report.render());
    assert!(report.all_proved());

    // --- 3. Noninterference, including the covert-channel catch.
    println!("== noninterference ==");
    let report = proofs::prove_noninterference(cfg);
    print!("{}", report.render());
    assert!(report.all_proved());

    println!("== legacy consecutive-PID spawn (the §6.2 covert channel) ==");
    let report = proofs::prove_spawn_child_consistency(true, cfg);
    print!("{}", report.render());
    assert!(
        !report.all_proved(),
        "the covert channel must be caught"
    );
    println!("(failure above is expected: the legacy interface leaks nr_children)");
}
