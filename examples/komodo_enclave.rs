//! Komodo^s end-to-end (paper §6.3): build, enter, exit, and tear down an
//! enclave concretely, then verify the monitor binary against its
//! specification and prove the noninterference lemmas.
//!
//! Run with: `cargo run --release --example komodo_enclave`

use serval_core::{OptCfg, PathElem};
use serval_ir::OptLevel;
use serval_monitors::komodo::{self, proofs, sys};
use serval_riscv::{reg, Machine};
use serval_smt::solver::SolverConfig;
use serval_smt::{reset_ctx, BV};
use serval_sym::SymCtx;

fn main() {
    let cfg = SolverConfig::default();

    println!("== Komodo^s: enclave lifecycle (concrete) ==");
    reset_ctx();
    let mut mem = komodo::fresh_mem();
    for i in 0..komodo::NPAGES {
        for f in ["type", "owner", "state", "refcount", "extra", "pad0", "pad1", "pad2"] {
            mem.write_path("pagedb", &[PathElem::Index(i), PathElem::Field(f)], BV::lit(64, 0));
        }
    }
    mem.write_path("state", &[PathElem::Field("cur_thread")], BV::lit(64, komodo::NONE as u128));
    mem.write_path("state", &[PathElem::Field("os_resume")], BV::lit(64, 0));
    mem.write_path("state", &[PathElem::Field("pending_mepc")], BV::lit(64, 0));
    let mut m = Machine::reset_at(komodo::CODE_BASE, mem);
    m.csrs.mepc = BV::lit(64, 0x1_0000);
    let interp = komodo::build(OptLevel::O1, OptCfg::default());
    let call = |m: &mut Machine, op: u64, args: [u64; 3]| -> u64 {
        let mut ctx = SymCtx::new();
        m.pc = BV::lit(64, komodo::CODE_BASE as u128);
        m.set_reg(reg::A7, BV::lit(64, op as u128));
        for (i, &a) in args.iter().enumerate() {
            m.set_reg(reg::A0 + i as u8, BV::lit(64, a as u128));
        }
        assert!(interp.run(&mut ctx, m).ok());
        m.reg(reg::A0).as_const().unwrap() as u64
    };
    println!("  InitAddrspace(0, 1)      = {}", call(&mut m, sys::INIT_ADDRSPACE, [0, 1, 0]) as i64);
    println!("  InitThread(0, 2, entry)  = {}", call(&mut m, sys::INIT_THREAD, [0, 2, 0x9000_0000]) as i64);
    println!("  InitL2PTable(0, 3)       = {}", call(&mut m, sys::INIT_L2PT, [0, 3, 0]) as i64);
    println!("  InitL3PTable(0, 4)       = {}", call(&mut m, sys::INIT_L3PT, [0, 4, 0]) as i64);
    println!("  MapSecure(0, 5, l3=4)    = {}", call(&mut m, sys::MAP_SECURE, [0, 5, 4]) as i64);
    println!("  Finalise(0)              = {}", call(&mut m, sys::FINALISE, [0, 0, 0]) as i64);
    println!("  Enter(thread=2)          = {}", call(&mut m, sys::ENTER, [2, 0, 0]) as i64);
    println!("    control at {:#x}, pmpcfg0 = {:#x} (secure window open)",
        m.pc.as_const().unwrap(), m.csrs.pmpcfg0.as_const().unwrap());
    m.csrs.mepc = BV::lit(64, 0x9000_0040);
    println!("  Exit(42)                 = {}", call(&mut m, sys::EXIT, [42, 0, 0]) as i64);
    println!("    control at {:#x}, pmpcfg0 = {:#x} (secure window closed)",
        m.pc.as_const().unwrap(), m.csrs.pmpcfg0.as_const().unwrap());
    println!("  Stop(0)                  = {}", call(&mut m, sys::STOP, [0, 0, 0]) as i64);
    for p in [1u64, 2, 3, 4, 5, 0] {
        println!("  Remove({p})                = {}", call(&mut m, sys::REMOVE, [p, 0, 0]) as i64);
    }

    println!("\n== refinement proof (binary, -O1), all 12 monitor calls ==");
    let report = proofs::prove_refinement(OptLevel::O1, OptCfg::default(), cfg);
    print!("{}", report.render());
    assert!(report.all_proved());

    println!("== noninterference (Nickel-style) ==");
    let report = proofs::prove_noninterference(cfg);
    print!("{}", report.render());
    assert!(report.all_proved());
}
