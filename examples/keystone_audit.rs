//! The Keystone audit (paper §7): rapid interface analysis with partial
//! specifications, plus UB bug finding with the IR verifier.
//!
//! Run with: `cargo run --release --example keystone_audit`

use serval_monitors::keystone::{
    audit_ub, prove_isolation, prove_no_nested_creation, KeystoneVariant,
};
use serval_smt::solver::SolverConfig;

fn main() {
    let cfg = SolverConfig::default();

    println!("== finding 1: enclave-in-enclave creation ==");
    let r = prove_no_nested_creation(KeystoneVariant::AsImplemented, cfg);
    print!("{}", r.render());
    assert!(!r.all_proved());
    println!("(failure expected: Keystone as implemented allowed it)\n");
    let r = prove_no_nested_creation(KeystoneVariant::Suggested, cfg);
    print!("{}", r.render());
    assert!(r.all_proved());
    println!("(the suggested interface — creation is OS-only — verifies)\n");

    println!("== finding 2: the OS page-table check is unnecessary ==");
    let r = prove_isolation(KeystoneVariant::Suggested, cfg);
    print!("{}", r.render());
    assert!(r.all_proved());
    println!("(PMP disjointness alone carries the isolation proof)\n");

    println!("== findings 3+4: undefined-behaviour bugs ==");
    let r = audit_ub(true, cfg);
    print!("{}", r.render());
    let found = r.theorems.iter().filter(|t| !t.verdict.is_proved()).count();
    println!("UB bugs found in the as-implemented paths: {found}\n");
    let r = audit_ub(false, cfg);
    assert!(r.all_proved());
    println!("fixed paths are clean ({} checks proved)", r.theorems.len());
}
