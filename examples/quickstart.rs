//! Quickstart: the paper's §3 walkthrough on the ToyRISC sign program.
//!
//! Reproduces, end to end:
//! - concrete emulation (the interpreter as a CPU emulator),
//! - symbolic evaluation of the sign program (paper Fig. 5),
//! - the refinement proof of §3.3 (UB absence, RI preservation, lock-step
//!   commutation with `spec-sign`),
//! - the step-consistency (noninterference) proof over the specification,
//! - the symbolic profiler exposing the merged-pc bottleneck (§3.2).
//!
//! Run with: `cargo run --example quickstart`

use serval_smt::solver::SolverConfig;
use serval_smt::{reset_ctx, BV};
use serval_sym::SymCtx;
use serval_toyrisc::{
    prove_sign_refinement, prove_sign_step_consistency, sign_program, Cpu, ToyRisc, A0,
};

fn main() {
    println!("== Serval quickstart: the ToyRISC sign program (paper §3) ==\n");
    println!("program (Fig. 3):");
    for (i, insn) in sign_program().iter().enumerate() {
        println!("  {i}: {insn:?}");
    }

    // 1. Concrete emulation.
    println!("\n-- 1. concrete emulation --");
    for a0 in [42i64, -5, 0] {
        reset_ctx();
        let mut ctx = SymCtx::new();
        let t = ToyRisc::new(sign_program());
        let mut cpu = Cpu::new(BV::lit(64, a0 as u64 as u128), BV::lit(64, 0));
        t.interpret(&mut ctx, &mut cpu);
        let sign = cpu.regs[A0].as_const().unwrap() as u64 as i64;
        println!("  sign({a0:>3}) = {sign}");
    }

    // 2. Symbolic evaluation (Fig. 5): the final state as terms.
    println!("\n-- 2. symbolic evaluation --");
    reset_ctx();
    let mut ctx = SymCtx::new();
    let t = ToyRisc::new(sign_program());
    let mut cpu = Cpu::fresh("cpu");
    let o = t.interpret(&mut ctx, &mut cpu);
    println!("  evaluated all paths in {} steps (longest path)", o.steps);
    println!("  final a0 = {:?}", cpu.regs[A0]);
    println!("  final pc = {:?}", cpu.pc);
    println!("  splits: {}, merges: {}", ctx.profiler.total_splits(),
        ctx.profiler.total_merges());

    // 3. Refinement proof (§3.3).
    println!("\n-- 3. refinement proof --");
    reset_ctx();
    let report = prove_sign_refinement(SolverConfig::default());
    print!("{}", report.render());
    assert!(report.all_proved());

    // 4. Step consistency over the specification.
    println!("\n-- 4. step consistency (noninterference) --");
    reset_ctx();
    let report = prove_sign_step_consistency(SolverConfig::default());
    print!("{}", report.render());
    assert!(report.all_proved());

    // 5. Symbolic profiling of the merged-pc baseline (§3.2).
    println!("\n-- 5. symbolic profiler: merged-pc vs split-pc --");
    reset_ctx();
    let mut ctx = SymCtx::new();
    let mut t = ToyRisc::new(sign_program());
    t.use_split_pc = false;
    t.fuel = 6;
    let mut cpu = Cpu::fresh("cpu");
    let o = t.interpret(&mut ctx, &mut cpu);
    println!("  without split-pc (fuel 6): diverged = {}", o.diverged);
    print!("{}", ctx.profiler.render());

    reset_ctx();
    let mut ctx = SymCtx::new();
    let t = ToyRisc::new(sign_program());
    let mut cpu = Cpu::fresh("cpu");
    let o = t.interpret(&mut ctx, &mut cpu);
    println!("\n  with split-pc: diverged = {}", o.diverged);
    print!("{}", ctx.profiler.render());

    println!("\nAll proofs completed.");
}
