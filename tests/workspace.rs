//! Workspace smoke test: pulls a cheap public self-check from every
//! member crate, so the tier-1 `cargo test -q` at the root exercises the
//! whole workspace even without `--workspace` (use
//! `cargo test -q --workspace` for every crate's full suite).

use serval_repro::smt::{reset_ctx, verify, BV};

#[test]
fn sat_solves() {
    use serval_repro::sat::{Lit, SolveResult, Solver};
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
    s.add_clause(&[Lit::neg(a)]);
    assert_eq!(s.solve(), SolveResult::Sat);
    assert_eq!(s.value(b), Some(true));
}

#[test]
fn smt_verifies() {
    reset_ctx();
    let x = BV::fresh(16, "x");
    assert!(verify(&[], (x ^ x).eq_(BV::lit(16, 0))).is_proved());
}

#[test]
fn sym_tracks_obligations() {
    use serval_repro::sym::SymCtx;
    let mut ctx = SymCtx::new();
    assert!(ctx.take_obligations().is_empty());
    assert_eq!(ctx.profiler.total_splits(), 0);
}

#[test]
fn core_memory_model_roundtrips() {
    use serval_repro::core_fw::{Layout, Mem, MemCfg, PathElem};
    reset_ctx();
    let mut mem = Mem::new(MemCfg::default());
    mem.add_region(
        "cell",
        0x1000,
        Layout::Struct(vec![("v".into(), Layout::Cell(8))]).instantiate_fresh("cell"),
    );
    mem.write_path("cell", &[PathElem::Field("v")], BV::lit(64, 7));
    let v = mem.read_path("cell", &[PathElem::Field("v")]);
    assert_eq!(v.as_const(), Some(7));
}

#[test]
fn toyrisc_walkthrough_proves() {
    use serval_repro::smt::solver::SolverConfig;
    reset_ctx();
    let report = serval_repro::toyrisc::prove_sign_refinement(SolverConfig::default());
    assert!(report.all_proved());
}

#[test]
fn riscv_encoder_decoder_agree() {
    use serval_repro::riscv::{decode, encode, Insn};
    let nop = Insn::OpImm {
        op: serval_repro::riscv::insn::IAluOp::Addi,
        rd: 0,
        rs1: 0,
        imm: 0,
    };
    assert_eq!(encode(nop), 0x0000_0013);
    assert_eq!(decode(0x0000_0013).unwrap(), nop);
}

#[test]
fn x86_encoder_decoder_agree() {
    use serval_repro::x86::{decode_validated, encode, Insn, Reg};
    let insn = Insn::MovRI { dst: Reg::Eax, imm: 0x1234_5678 };
    let bytes = encode(insn);
    let (back, n) = decode_validated(&bytes).unwrap();
    assert_eq!(back, insn);
    assert_eq!(n, bytes.len());
}

#[test]
fn bpf_encoder_decoder_agree() {
    use serval_repro::bpf::{decode_validated, encode, Insn};
    let insn = Insn::LdDw { dst: 3, imm: -1 };
    let slots = encode(insn);
    let (back, used) = decode_validated(&slots).unwrap();
    assert_eq!(back, insn);
    assert_eq!(used, slots.len());
}

#[test]
fn ir_compiles_to_riscv() {
    use serval_repro::ir::ir::{FuncBuilder, Term, Val};
    use serval_repro::ir::{compile, Module, OptLevel};
    use serval_repro::riscv::Asm;
    reset_ctx();
    let mut b = FuncBuilder::new("answer", 0);
    b.block("entry");
    b.term(Term::Ret(Val::Const(42)));
    let module = Module { funcs: vec![b.build()], globals: vec![] };
    let mut asm = Asm::new();
    compile(&module, OptLevel::O0, &mut asm);
    assert!(!asm.assemble(0x8000_0000).is_empty());
}

#[test]
fn monitors_prove_cheapest_call() {
    use serval_repro::core_fw::OptCfg;
    use serval_repro::ir::OptLevel;
    use serval_repro::monitors::certikos;
    use serval_repro::smt::solver::SolverConfig;
    let report = certikos::proofs::prove_op(
        certikos::sys::GET_QUOTA,
        OptLevel::O0,
        OptCfg::default(),
        SolverConfig::default(),
    );
    assert!(report.all_proved());
}

#[test]
fn jit_checker_accepts_fixed_jit() {
    use serval_repro::bpf::{AluOp, Insn, Src};
    use serval_repro::jit::{check_rv64, Rv64Jit};
    use serval_repro::smt::solver::SolverConfig;
    let insn = Insn::Alu64 { op: AluOp::Add, src: Src::X, dst: 1, srcr: 2, imm: 0 };
    let row = check_rv64(&Rv64Jit::fixed(), insn, SolverConfig::default()).unwrap();
    assert!(row.ok);
}

#[test]
fn check_substrate_works() {
    use serval_check::bench::{BenchConfig, Harness};
    use serval_check::prelude::*;
    use serval_check::runner::run_property;
    let cfg = ProptestConfig::with_cases(64);
    run_property(&cfg, "smoke", &(0u32..100, any::<bool>()), |(x, _b)| {
        prop_assert!(x < 100);
    });
    let mut h = Harness::with_config("smoke", BenchConfig { warmup: 0, samples: 2 });
    h.bench("noop", || {});
    assert!(h.to_json().contains("\"suite\": \"smoke\""));
}
