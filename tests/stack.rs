//! Cross-crate integration tests: the full verification stack end-to-end,
//! from the CDCL solver up through a monitor refinement proof.

use serval_repro::core_fw::{OptCfg, PathElem};
use serval_repro::smt::solver::SolverConfig;
use serval_repro::smt::{reset_ctx, verify, BV};
use serval_repro::sym::SymCtx;

/// The whole pipeline in one query: terms → blasting → CDCL → model.
#[test]
fn solver_pipeline_end_to_end() {
    reset_ctx();
    let x = BV::fresh(64, "x");
    let y = BV::fresh(64, "y");
    // De Morgan at 64 bits exercises terms, blaster, and CDCL.
    let goal = (!(x & y)).eq_(!x | !y);
    assert!(verify(&[], goal).is_proved());
}

/// ToyRISC (paper §3) through the public API re-exports.
#[test]
fn toyrisc_full_walkthrough() {
    reset_ctx();
    let report = serval_repro::toyrisc::prove_sign_refinement(SolverConfig::default());
    assert!(report.all_proved(), "\n{}", report.render());
    let report =
        serval_repro::toyrisc::prove_sign_step_consistency(SolverConfig::default());
    assert!(report.all_proved());
}

/// A CertiKOS^s monitor call verified at the binary level, exercising
/// every crate: IR → compiler → assembler → encoder → decoder → RISC-V
/// verifier → memory model → spec library → SMT → SAT.
#[test]
fn certikos_binary_refinement() {
    use serval_repro::monitors::certikos;
    let report = certikos::proofs::prove_op(
        certikos::sys::GET_QUOTA,
        serval_repro::ir::OptLevel::O2,
        OptCfg::default(),
        SolverConfig::default(),
    );
    assert!(report.all_proved(), "\n{}", report.render());
}

/// The JIT checker finds a seeded bug and verifies the fix (paper §7).
#[test]
fn jit_checker_round_trip() {
    use serval_repro::bpf::{AluOp, Insn, Src};
    use serval_repro::jit::{check_rv64, Rv64Jit, RvBug};
    let insn = Insn::Alu32 { op: AluOp::Add, src: Src::X, dst: 1, srcr: 2, imm: 0 };
    let mut buggy = Rv64Jit::fixed();
    buggy.bugs.insert(RvBug::ZextAdd32);
    let row = check_rv64(&buggy, insn, SolverConfig::default()).unwrap();
    assert!(!row.ok, "seeded zero-extension bug must be found");
    let row = check_rv64(&Rv64Jit::fixed(), insn, SolverConfig::default()).unwrap();
    assert!(row.ok);
}

/// Keystone findings through the public API (paper §7).
#[test]
fn keystone_findings() {
    use serval_repro::monitors::keystone;
    let cfg = SolverConfig::default();
    assert!(!keystone::prove_no_nested_creation(
        keystone::KeystoneVariant::AsImplemented,
        cfg
    )
    .all_proved());
    assert!(keystone::prove_no_nested_creation(keystone::KeystoneVariant::Suggested, cfg)
        .all_proved());
    let report = keystone::audit_ub(true, cfg);
    assert!(report.theorems.iter().any(|t| !t.verdict.is_proved()));
}

/// A tiny system built and verified through the stack: a counter service
/// with one trap handler, written in IR, compiled at O2, verified on the
/// binary against a one-line spec.
#[test]
fn custom_monitor_from_scratch() {
    use serval_repro::core_fw::{Layout, Mem, MemCfg};
    use serval_repro::ir::ir::{BinOp, FuncBuilder, Module, Term, Val};
    use serval_repro::ir::{compile, OptLevel};
    use serval_repro::riscv::{reg, Asm, Interp, Machine};

    reset_ctx();
    let mut b = FuncBuilder::new("tick", 0);
    b.block("entry");
    let old = b.load(Val::Global("counter"), 8);
    let new = b.bin(BinOp::Add, old, Val::Const(1));
    b.store(Val::Global("counter"), new, 8);
    b.term(Term::Ret(old));
    let module = Module {
        funcs: vec![b.build()],
        globals: vec![("counter", 0x8050_0000)],
    };
    let mut asm = Asm::new();
    asm.define_symbol("stack_top", 0x8010_0000);
    asm.la(reg::SP, "stack_top");
    asm.call("tick");
    asm.i(serval_repro::riscv::Insn::Mret);
    compile(&module, OptLevel::O2, &mut asm);
    let words = asm.assemble(0x8000_0000);
    let interp = Interp::from_words(0x8000_0000, &words, 256).unwrap();

    let mut mem = Mem::new(MemCfg::default());
    mem.add_region(
        "counter",
        0x8050_0000,
        Layout::Struct(vec![("v".into(), Layout::Cell(8))]).instantiate_fresh("counter"),
    );
    mem.add_region(
        "stack",
        0x8010_0000 - 4096,
        Layout::Array(512, Box::new(Layout::Cell(8))).instantiate_fresh("stack"),
    );
    let mut ctx = SymCtx::new();
    let mut m = Machine::fresh_at(0x8000_0000, mem, "m");
    let before = m.mem.read_path("counter", &[PathElem::Field("v")]);
    let o = interp.run(&mut ctx, &mut m);
    assert!(o.ok());
    let after = m.mem.read_path("counter", &[PathElem::Field("v")]);
    // Spec: the handler returns the old value and increments the counter.
    assert!(verify(&[], m.reg(reg::A0).eq_(before)).is_proved());
    assert!(verify(&[], after.eq_(before + BV::lit(64, 1))).is_proved());
    // And all UB obligations hold.
    for ob in ctx.take_obligations() {
        assert!(verify(&[], ob.condition).is_proved(), "{}", ob.label);
    }
}
