#!/bin/sh
# CI gate for the Serval reproduction. Everything runs with --offline:
# the workspace has zero external dependencies (see crates/check for the
# from-scratch proptest/rand/criterion replacement), and this script is
# the proof that resolution never reaches for a registry.
set -eu

echo "== build (release, offline) =="
cargo build --release --offline

echo "== tests (whole workspace, offline, SERVAL_JOBS=1) =="
SERVAL_JOBS=1 cargo test -q --workspace --offline

echo "== tests (whole workspace, offline, SERVAL_JOBS=4) =="
SERVAL_JOBS=4 cargo test -q --workspace --offline

echo "== tests (engine + core, incremental sessions off) =="
SERVAL_INCREMENTAL=0 cargo test -q --offline -p serval-engine -p serval-core

echo "== tests (engine + core, incremental sessions on) =="
SERVAL_INCREMENTAL=1 cargo test -q --offline -p serval-engine -p serval-core

echo "== tests (engine + core, presolve off) =="
SERVAL_PRESOLVE=0 cargo test -q --offline -p serval-engine -p serval-core

echo "== tests (engine + core, presolve on) =="
SERVAL_PRESOLVE=1 cargo test -q --offline -p serval-engine -p serval-core

echo "== tests (engine + core, SAT inprocessing off) =="
SERVAL_INPROCESS=0 cargo test -q --offline -p serval-engine -p serval-core

echo "== tests (engine + core, SAT inprocessing on) =="
SERVAL_INPROCESS=1 cargo test -q --offline -p serval-engine -p serval-core

echo "== tests (engine + core, polarity-aware CNF off) =="
SERVAL_POLARITY=0 cargo test -q --offline -p serval-engine -p serval-core

echo "== tests (engine + core, proof certificates off) =="
SERVAL_CERT=0 cargo test -q --offline -p serval-engine -p serval-core

echo "== tests (engine + core, proof certificates on) =="
SERVAL_CERT=1 cargo test -q --offline -p serval-engine -p serval-core

echo "== tests (engine + core, session inprocessing off) =="
SERVAL_SESSION_INPROCESS=0 cargo test -q --offline -p serval-engine -p serval-core

echo "== tests (engine + core, session inprocessing on) =="
SERVAL_SESSION_INPROCESS=1 cargo test -q --offline -p serval-engine -p serval-core

echo "== tests (engine + core, certified, LRAT hints off) =="
SERVAL_CERT=1 SERVAL_LRAT=0 cargo test -q --offline -p serval-engine -p serval-core

echo "== tests (engine + core, certified, LRAT hints on) =="
SERVAL_CERT=1 SERVAL_LRAT=1 cargo test -q --offline -p serval-engine -p serval-core

# Deterministic simulation: the pinned regression-seed corpus runs as
# part of the workspace tests above; this block additionally sweeps
# fresh hostile schedules (seeded scheduler + buggify + IO faults). Any
# failure prints the offending seed and the replay command, and the
# sweep exits nonzero.
echo "== deterministic simulation (500-seed hostile sweep) =="
SERVAL_BUGGIFY=1 SERVAL_SIM_SWEEP=500 \
  cargo run --release --offline -p serval-sim --bin sim_sweep

# Verification service: start servald on an ephemeral loopback port,
# then discharge the whole certikos -O1 refinement through serval-cli
# and compare against an in-process run. `parity` exits nonzero on any
# verdict mismatch or if fewer than 2 shards did work. The net_batch
# scenario is already covered by the hostile sweep above.
echo "== verification service (loopback smoke) =="
rm -f target/servald.addr
./target/release/servald --addr 127.0.0.1:0 --addr-file target/servald.addr --shards 2 &
SERVALD_PID=$!
trap 'kill "$SERVALD_PID" 2>/dev/null || true' EXIT
i=0
while [ ! -s target/servald.addr ] && [ "$i" -lt 100 ]; do
  i=$((i + 1))
  sleep 0.1
done
[ -s target/servald.addr ] || { echo "servald never wrote its address"; exit 1; }
SERVAL_ADDR="$(cat target/servald.addr)" ./target/release/serval-cli parity o1
kill "$SERVALD_PID"

echo "== examples =="
cargo run --release --offline --example quickstart
cargo run --release --offline --example bpf_jit_check
cargo run --release --offline --example remote_probe

echo "CI OK"
